//! A small textual query language for interactive exploration.
//!
//! Two entry points share one grammar core: [`parse_predicate`] accepts a
//! bare conjunctive predicate (the historical surface), and
//! [`parse_statement`] accepts a full query statement that maps 1:1 onto
//! the engine's query IR (`entropydb_core::plan::QueryRequest`).
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! statement := COUNT [ '(' '*' ')' ] [ WHERE predicate ] [ GROUP BY attrs ]
//!            | SUM '(' attr ')' [ WHERE predicate ]
//!            | AVG '(' attr ')' [ WHERE predicate ]
//!            | GROUP BY attrs [ WHERE predicate ]
//!            | TOP k attr [ WHERE predicate ]
//!            | SAMPLE k [ SEED s ]
//! attrs     := attr [ ',' attr ]                (one or two group attributes)
//! predicate := clause ( AND clause )*
//! clause    := attr '=' value
//!            | attr ( '<' | '<=' | '>' | '>=' ) value
//!            | attr BETWEEN value AND value
//!            | attr IN '(' [ value ( ',' value )* ] ')'
//! ```
//!
//! Attribute names and values are resolved through a [`Resolver`] so the
//! same parser serves dictionary-coded categorical columns ("origin = CA")
//! and binned numeric columns ("distance BETWEEN 100 AND 800", mapped to
//! bucket ranges). Comparison operators desugar to inclusive code ranges
//! against the attribute's domain bounds: `d < v` is the range below `v`'s
//! code (the explicit always-false predicate when `v` maps to code 0), and
//! `d >= v` runs from `v`'s code to the end of the domain. Values outside
//! a binned domain resolve through [`ValueBound`] rather than clamping, so
//! `d > 0` over a domain starting at 700 is `All`, not "above bucket 0".
//! `IN ()` parses to the explicit always-false
//! [`AttrPredicate::Never`](crate::predicate::AttrPredicate).

use crate::error::{Result, StorageError};
use crate::predicate::{AttrPredicate, Predicate};
use crate::schema::AttrId;

/// Where a comparison value sits relative to an attribute's coded domain.
/// Binned attributes clamp out-of-range values into the first/last bucket
/// for *point* lookups (outliers stay visible), but comparisons must know
/// the difference: `distance > 0` with a domain starting at 700 matches
/// everything, not "everything above bucket 0".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueBound {
    /// The value lies below every code of the domain.
    Below,
    /// The value maps to this code.
    Within(u32),
    /// The value lies above every code of the domain.
    Above,
}

/// Resolves attribute names and user-facing values to dense codes.
pub trait Resolver {
    /// The attribute id for a name.
    fn attr(&self, name: &str) -> Result<AttrId>;
    /// The dense code for a textual value of `attr`.
    fn code(&self, attr: AttrId, value: &str) -> Result<u32>;
    /// The attribute's domain size (needed to desugar open comparisons
    /// like `attr >= v` into inclusive code ranges).
    fn domain_size(&self, attr: AttrId) -> Result<usize>;
    /// The value's position relative to the coded domain, for comparison
    /// desugaring. The default suits resolvers without out-of-domain
    /// values (e.g. dictionaries, which reject unknown values outright);
    /// binned resolvers override it to distinguish values beyond the bin
    /// range from values clamped into the edge buckets.
    fn bound(&self, attr: AttrId, value: &str) -> Result<ValueBound> {
        Ok(ValueBound::Within(self.code(attr, value)?))
    }
}

/// A parsed query statement: the textual counterpart of the engine's query
/// IR, with all names and values already resolved to dense codes. The core
/// crate converts this 1:1 into `entropydb_core::plan::QueryRequest`.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `COUNT [WHERE ...]`.
    Count { pred: Predicate },
    /// `SUM(attr) [WHERE ...]`.
    Sum { attr: AttrId, pred: Predicate },
    /// `AVG(attr) [WHERE ...]`.
    Avg { attr: AttrId, pred: Predicate },
    /// `[COUNT ...] GROUP BY attr [, attr2]`.
    GroupBy {
        attr: AttrId,
        by2: Option<AttrId>,
        pred: Predicate,
    },
    /// `TOP k attr [WHERE ...]`.
    TopK {
        attr: AttrId,
        k: usize,
        pred: Predicate,
    },
    /// `SAMPLE k [SEED s]`.
    Sample { k: usize, seed: u64 },
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Word(String),
    Equals,
    Lt,
    Le,
    Gt,
    Ge,
    LParen,
    RParen,
    Comma,
}

impl std::fmt::Display for Token {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Token::Word(w) => write!(f, "{w:?}"),
            Token::Equals => f.write_str("'='"),
            Token::Lt => f.write_str("'<'"),
            Token::Le => f.write_str("'<='"),
            Token::Gt => f.write_str("'>'"),
            Token::Ge => f.write_str("'>='"),
            Token::LParen => f.write_str("'('"),
            Token::RParen => f.write_str("')'"),
            Token::Comma => f.write_str("','"),
        }
    }
}

fn syntax(message: impl Into<String>) -> StorageError {
    StorageError::Syntax(message.into())
}

fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let mut word = String::new();
    let flush = |word: &mut String, tokens: &mut Vec<Token>| {
        if !word.is_empty() {
            tokens.push(Token::Word(std::mem::take(word)));
        }
    };
    let mut chars = input.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '=' => {
                flush(&mut word, &mut tokens);
                tokens.push(Token::Equals);
            }
            '<' | '>' => {
                flush(&mut word, &mut tokens);
                let strict = chars.next_if_eq(&'=').is_none();
                tokens.push(match (c, strict) {
                    ('<', true) => Token::Lt,
                    ('<', false) => Token::Le,
                    ('>', true) => Token::Gt,
                    _ => Token::Ge,
                });
            }
            '(' => {
                flush(&mut word, &mut tokens);
                tokens.push(Token::LParen);
            }
            ')' => {
                flush(&mut word, &mut tokens);
                tokens.push(Token::RParen);
            }
            ',' => {
                flush(&mut word, &mut tokens);
                tokens.push(Token::Comma);
            }
            c if c.is_whitespace() => flush(&mut word, &mut tokens),
            c => word.push(c),
        }
    }
    flush(&mut word, &mut tokens);
    if tokens.is_empty() {
        return Err(syntax("empty input"));
    }
    Ok(tokens)
}

struct Parser<'a, R: Resolver + ?Sized> {
    tokens: Vec<Token>,
    pos: usize,
    resolver: &'a R,
}

impl<'a, R: Resolver + ?Sized> Parser<'a, R> {
    fn new(input: &str, resolver: &'a R) -> Result<Self> {
        Ok(Parser {
            tokens: tokenize(input)?,
            pos: 0,
            resolver,
        })
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn next(&mut self) -> Result<Token> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| syntax("unexpected end of input"))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect_word(&mut self, what: &str) -> Result<String> {
        match self.next()? {
            Token::Word(w) => Ok(w),
            other => Err(syntax(format!("expected {what}, found {other}"))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        let w = self.expect_word(kw)?;
        if w.eq_ignore_ascii_case(kw) {
            Ok(())
        } else {
            Err(syntax(format!("expected {kw}, found {w:?}")))
        }
    }

    fn expect_token(&mut self, token: Token) -> Result<()> {
        let t = self.next()?;
        if t == token {
            Ok(())
        } else {
            Err(syntax(format!("expected {token}, found {t}")))
        }
    }

    /// Consumes the next word if it equals `kw` (case-insensitive).
    fn eat_keyword(&mut self, kw: &str) -> bool {
        match self.peek() {
            Some(Token::Word(w)) if w.eq_ignore_ascii_case(kw) => {
                self.pos += 1;
                true
            }
            _ => false,
        }
    }

    fn expect_usize(&mut self, what: &str) -> Result<usize> {
        let w = self.expect_word(what)?;
        w.parse().map_err(|_| {
            syntax(format!(
                "expected {what} (a non-negative integer), found {w:?}"
            ))
        })
    }

    /// Desugars a comparison operator into an inclusive code range against
    /// the attribute's domain bounds. Comparisons that exclude every code
    /// (e.g. `< first-code`, or `>` a value beyond the domain ceiling)
    /// produce the explicit always-false predicate; comparisons every code
    /// satisfies (e.g. `>` a value below the domain floor) produce `All`.
    fn comparison(&mut self, attr: AttrId, op: &Token) -> Result<AttrPredicate> {
        let value = self.expect_word("value")?;
        let bound = self.resolver.bound(attr, &value)?;
        let last = (self.resolver.domain_size(attr)?.saturating_sub(1)) as u32;
        let below = matches!(op, Token::Lt | Token::Le);
        Ok(match bound {
            // The value sits outside the coded domain: the comparison is
            // decided for every code at once.
            ValueBound::Below if below => AttrPredicate::Never,
            ValueBound::Below => AttrPredicate::All,
            ValueBound::Above if below => AttrPredicate::All,
            ValueBound::Above => AttrPredicate::Never,
            ValueBound::Within(code) => match op {
                Token::Lt if code == 0 => AttrPredicate::Never,
                Token::Lt => AttrPredicate::Range {
                    lo: 0,
                    hi: code - 1,
                },
                Token::Le => AttrPredicate::Range { lo: 0, hi: code },
                Token::Gt if code >= last => AttrPredicate::Never,
                Token::Gt => AttrPredicate::Range {
                    lo: code + 1,
                    hi: last,
                },
                _ => AttrPredicate::Range { lo: code, hi: last },
            },
        })
    }

    fn clause(&mut self, pred: Predicate) -> Result<Predicate> {
        let attr_name = self.expect_word("attribute name")?;
        let attr = self.resolver.attr(&attr_name)?;
        match self.next()? {
            Token::Equals => {
                let value = self.expect_word("value")?;
                Ok(pred.eq(attr, self.resolver.code(attr, &value)?))
            }
            op @ (Token::Lt | Token::Le | Token::Gt | Token::Ge) => {
                let p = self.comparison(attr, &op)?;
                Ok(pred.with(attr, p))
            }
            Token::Word(w) if w.eq_ignore_ascii_case("between") => {
                let lo = self.expect_word("lower bound")?;
                self.expect_keyword("and")?;
                let hi = self.expect_word("upper bound")?;
                let (lo, hi) = (
                    self.resolver.code(attr, &lo)?,
                    self.resolver.code(attr, &hi)?,
                );
                if lo > hi {
                    return Err(StorageError::InvalidRange { lo, hi });
                }
                Ok(pred.between(attr, lo, hi))
            }
            Token::Word(w) if w.eq_ignore_ascii_case("in") => {
                self.expect_token(Token::LParen)?;
                let mut values = Vec::new();
                // `IN ()` is the explicit empty (always-false) predicate.
                if self.peek() == Some(&Token::RParen) {
                    self.pos += 1;
                    return Ok(pred.in_set(attr, values));
                }
                loop {
                    let v = self.expect_word("value")?;
                    values.push(self.resolver.code(attr, &v)?);
                    match self.next()? {
                        Token::Comma => continue,
                        Token::RParen => break,
                        other => {
                            return Err(syntax(format!(
                                "expected ',' or ')' in IN list, found {other}"
                            )))
                        }
                    }
                }
                Ok(pred.in_set(attr, values))
            }
            other => Err(syntax(format!(
                "expected =, <, <=, >, >=, BETWEEN, or IN after {attr_name:?}, found {other}"
            ))),
        }
    }

    /// Parses `clause (AND clause)*`, stopping at end of input or any token
    /// the clause grammar cannot start (e.g. a trailing GROUP keyword).
    fn predicate(&mut self) -> Result<Predicate> {
        let mut pred = self.clause(Predicate::new())?;
        while self.eat_keyword("and") {
            pred = self.clause(pred)?;
        }
        Ok(pred)
    }

    /// Parses the optional `WHERE predicate` suffix.
    fn optional_where(&mut self) -> Result<Predicate> {
        if self.eat_keyword("where") {
            self.predicate()
        } else {
            Ok(Predicate::all())
        }
    }

    /// Parses `attr [, attr]` after GROUP BY.
    fn group_attrs(&mut self) -> Result<(AttrId, Option<AttrId>)> {
        let first = self.expect_word("group attribute")?;
        let first = self.resolver.attr(&first)?;
        if self.peek() == Some(&Token::Comma) {
            self.pos += 1;
            let second = self.expect_word("group attribute")?;
            Ok((first, Some(self.resolver.attr(&second)?)))
        } else {
            Ok((first, None))
        }
    }

    fn expect_end(&mut self) -> Result<()> {
        match self.peek() {
            None => Ok(()),
            Some(t) => Err(syntax(format!("unexpected trailing {t}"))),
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        let head = self.expect_word("statement keyword")?;
        let stmt = if head.eq_ignore_ascii_case("count") {
            // Optional `(*)` after COUNT.
            if self.peek() == Some(&Token::LParen) {
                self.pos += 1;
                let star = self.expect_word("*")?;
                if star != "*" {
                    return Err(syntax(format!("expected COUNT(*), found COUNT({star})")));
                }
                self.expect_token(Token::RParen)?;
            }
            let pred = self.optional_where()?;
            if self.eat_keyword("group") {
                self.expect_keyword("by")?;
                let (attr, by2) = self.group_attrs()?;
                Statement::GroupBy { attr, by2, pred }
            } else {
                Statement::Count { pred }
            }
        } else if head.eq_ignore_ascii_case("sum") || head.eq_ignore_ascii_case("avg") {
            self.expect_token(Token::LParen)?;
            let name = self.expect_word("aggregated attribute")?;
            let attr = self.resolver.attr(&name)?;
            self.expect_token(Token::RParen)?;
            let pred = self.optional_where()?;
            if head.eq_ignore_ascii_case("sum") {
                Statement::Sum { attr, pred }
            } else {
                Statement::Avg { attr, pred }
            }
        } else if head.eq_ignore_ascii_case("group") {
            self.expect_keyword("by")?;
            let (attr, by2) = self.group_attrs()?;
            let pred = self.optional_where()?;
            Statement::GroupBy { attr, by2, pred }
        } else if head.eq_ignore_ascii_case("top") {
            let k = self.expect_usize("k")?;
            let name = self.expect_word("ranked attribute")?;
            let attr = self.resolver.attr(&name)?;
            let pred = self.optional_where()?;
            Statement::TopK { attr, k, pred }
        } else if head.eq_ignore_ascii_case("sample") {
            let k = self.expect_usize("sample size")?;
            let seed = if self.eat_keyword("seed") {
                let w = self.expect_word("seed")?;
                w.parse()
                    .map_err(|_| syntax(format!("expected an integer seed, found {w:?}")))?
            } else {
                0
            };
            Statement::Sample { k, seed }
        } else {
            return Err(syntax(format!(
                "expected COUNT, SUM, AVG, GROUP BY, TOP, or SAMPLE, found {head:?}"
            )));
        };
        self.expect_end()?;
        Ok(stmt)
    }
}

/// Parses a textual predicate against a resolver.
pub fn parse_predicate<R: Resolver + ?Sized>(input: &str, resolver: &R) -> Result<Predicate> {
    let mut parser = Parser::new(input, resolver)?;
    let pred = parser.predicate()?;
    if !parser.at_end() {
        return Err(syntax(format!(
            "expected AND, found {}",
            parser.peek().expect("not at end")
        )));
    }
    Ok(pred)
}

/// Parses a full query statement against a resolver.
pub fn parse_statement<R: Resolver + ?Sized>(input: &str, resolver: &R) -> Result<Statement> {
    Parser::new(input, resolver)?.statement()
}

/// The position of numeric value `value` relative to `binner`'s range.
fn binned_bound(binner: &crate::binning::Binner, value: &str) -> Result<ValueBound> {
    let x: f64 = value
        .parse()
        .map_err(|_| StorageError::Syntax(format!("expected a numeric value, found {value:?}")))?;
    Ok(if x < binner.lo() {
        ValueBound::Below
    } else if x > binner.hi() {
        ValueBound::Above
    } else {
        ValueBound::Within(binner.bin(x))
    })
}

impl Resolver for crate::csv::CsvDataset {
    fn attr(&self, name: &str) -> Result<AttrId> {
        self.table.schema().attr_by_name(name)
    }

    fn code(&self, attr: AttrId, value: &str) -> Result<u32> {
        self.code_of(attr, value)
    }

    fn domain_size(&self, attr: AttrId) -> Result<usize> {
        self.table.schema().domain_size(attr)
    }

    fn bound(&self, attr: AttrId, value: &str) -> Result<ValueBound> {
        match self.table.schema().attr(attr)?.binner() {
            Some(binner) => binned_bound(binner, value),
            // Dictionary lookups reject unknown values outright, so every
            // resolvable value is within the domain.
            None => Ok(ValueBound::Within(self.code(attr, value)?)),
        }
    }
}

/// A dictionary-free resolver over a bare [`Schema`](crate::schema::Schema):
/// attribute names
/// resolve through the schema, values of binned attributes map through the
/// binner, and values of categorical attributes are parsed as dense codes
/// directly. This is what a query server has available when only the
/// summary (not the base data) is loaded.
impl Resolver for crate::schema::Schema {
    fn attr(&self, name: &str) -> Result<AttrId> {
        self.attr_by_name(name)
    }

    fn code(&self, attr: AttrId, value: &str) -> Result<u32> {
        let attribute = self.attr(attr)?;
        match attribute.binner() {
            Some(binner) => {
                let x: f64 = value.parse().map_err(|_| {
                    StorageError::Syntax(format!(
                        "expected a numeric value for {:?}, found {value:?}",
                        attribute.name()
                    ))
                })?;
                Ok(binner.bin(x))
            }
            None => {
                let code: u32 = value.parse().map_err(|_| {
                    StorageError::Syntax(format!(
                        "expected a dense code for {:?}, found {value:?}",
                        attribute.name()
                    ))
                })?;
                if (code as usize) < attribute.domain_size() {
                    Ok(code)
                } else {
                    Err(StorageError::CodeOutOfDomain {
                        attr: attribute.name().to_string(),
                        code,
                        domain_size: attribute.domain_size(),
                    })
                }
            }
        }
    }

    fn domain_size(&self, attr: AttrId) -> Result<usize> {
        crate::schema::Schema::domain_size(self, attr)
    }

    fn bound(&self, attr: AttrId, value: &str) -> Result<ValueBound> {
        match self.attr(attr)?.binner() {
            Some(binner) => binned_bound(binner, value),
            None => Ok(ValueBound::Within(Resolver::code(self, attr, value)?)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csv::{load_str, CsvOptions};
    use crate::predicate::AttrPredicate;

    fn dataset() -> crate::csv::CsvDataset {
        load_str(
            "origin,dest,distance\nCA,NY,2500\nCA,FL,2300\nNY,CA,2500\nWA,CA,700\n",
            &CsvOptions::default(),
        )
        .unwrap()
    }

    #[test]
    fn parses_equality_on_categorical() {
        let d = dataset();
        let p = parse_predicate("origin = CA", &d).unwrap();
        assert_eq!(p.clauses().len(), 1);
        let ca = d.code_of(AttrId(0), "CA").unwrap();
        assert_eq!(p.clauses()[0], (AttrId(0), AttrPredicate::Point(ca)));
    }

    #[test]
    fn parses_between_on_numeric() {
        let d = dataset();
        let p = parse_predicate("distance BETWEEN 700 AND 2400", &d).unwrap();
        let (attr, clause) = &p.clauses()[0];
        assert_eq!(*attr, AttrId(2));
        assert!(matches!(clause, AttrPredicate::Range { .. }));
    }

    #[test]
    fn parses_conjunctions_and_in_lists() {
        let d = dataset();
        let p = parse_predicate("origin IN (CA, WA) AND dest = CA", &d).unwrap();
        assert_eq!(p.clauses().len(), 2);
        assert!(matches!(p.clauses()[0].1, AttrPredicate::Set(_)));
        // Count through the engine: CA→CA never happens, WA→CA once.
        let c = crate::exec::count(&d.table, &p).unwrap();
        assert_eq!(c, 1);
    }

    #[test]
    fn empty_in_list_is_always_false() {
        let d = dataset();
        let p = parse_predicate("origin IN ()", &d).unwrap();
        assert_eq!(p.clauses()[0], (AttrId(0), AttrPredicate::Never));
        assert_eq!(crate::exec::count(&d.table, &p).unwrap(), 0);
        // Conjoined with satisfiable clauses it still annihilates.
        let p = parse_predicate("dest = CA AND origin IN ()", &d).unwrap();
        assert_eq!(crate::exec::count(&d.table, &p).unwrap(), 0);
    }

    #[test]
    fn comparison_operators_match_exact_executor() {
        let d = dataset();
        let binner = d
            .table
            .schema()
            .attr(AttrId(2))
            .unwrap()
            .binner()
            .unwrap()
            .clone();
        // Rows hold distances 2500, 2300, 2500, 700. Each operator desugars
        // to an inclusive bin range; expected counts follow from mapping
        // each raw value through the same binner the parser uses.
        let raw = [2500.0, 2300.0, 2500.0, 700.0];
        type Case = (&'static str, u32, fn(u32, u32) -> bool);
        let cases: [Case; 4] = [
            ("distance < 2400", binner.bin(2400.0), |b, t| b < t),
            ("distance <= 2400", binner.bin(2400.0), |b, t| b <= t),
            ("distance > 700", binner.bin(700.0), |b, t| b > t),
            ("distance >= 2300", binner.bin(2300.0), |b, t| b >= t),
        ];
        for (expr, threshold, bin_pred) in cases {
            let p = parse_predicate(expr, &d).unwrap();
            let got = crate::exec::count(&d.table, &p).unwrap();
            let expected = raw
                .iter()
                .filter(|&&v| bin_pred(binner.bin(v), threshold))
                .count() as u64;
            assert_eq!(got, expected, "{expr}");
        }
        // Concrete counts on this dataset (64 bins over [700, 2500]).
        let count =
            |expr: &str| crate::exec::count(&d.table, &parse_predicate(expr, &d).unwrap()).unwrap();
        assert_eq!(count("distance < 2400"), 2); // 2300 and 700
        assert_eq!(count("distance > 700"), 3); // everything above bin 0
        assert_eq!(count("distance >= 2300"), 3); // 2300 and both 2500s
        assert_eq!(count("distance <= 2500"), 4);
    }

    #[test]
    fn comparisons_below_domain_floor_are_never() {
        let d = dataset();
        // The smallest distance bin holds 700; anything strictly below the
        // first code is the explicit empty predicate.
        let p = parse_predicate("distance < 700", &d).unwrap();
        assert_eq!(p.clauses()[0].1, AttrPredicate::Never);
        assert_eq!(crate::exec::count(&d.table, &p).unwrap(), 0);
        // Strictly above the last code likewise.
        let p = parse_predicate("distance > 2500", &d).unwrap();
        assert_eq!(p.clauses()[0].1, AttrPredicate::Never);
    }

    #[test]
    fn comparisons_against_out_of_domain_values_are_exact() {
        let d = dataset();
        let count =
            |expr: &str| crate::exec::count(&d.table, &parse_predicate(expr, &d).unwrap()).unwrap();
        // Values beyond the binned range [700, 2500] must not clamp into
        // the edge buckets: `> 0` matches everything (including the rows
        // in bucket 0), `< 99999` likewise.
        assert_eq!(
            parse_predicate("distance > 0", &d).unwrap().clauses()[0].1,
            AttrPredicate::All
        );
        assert_eq!(count("distance > 0"), 4);
        assert_eq!(count("distance >= 0"), 4);
        assert_eq!(count("distance < 99999"), 4);
        assert_eq!(count("distance <= 99999"), 4);
        // And the opposite directions are empty, not "the edge bucket".
        assert_eq!(count("distance <= 0"), 0);
        assert_eq!(count("distance < 0"), 0);
        assert_eq!(count("distance > 99999"), 0);
        assert_eq!(count("distance >= 99999"), 0);
        // Same through the dictionary-free schema resolver.
        let schema = d.table.schema().clone();
        let p = parse_predicate("distance > 0", &schema).unwrap();
        assert_eq!(p.clauses()[0].1, AttrPredicate::All);
        let p = parse_predicate("distance >= 99999", &schema).unwrap();
        assert_eq!(p.clauses()[0].1, AttrPredicate::Never);
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let d = dataset();
        assert!(parse_predicate("distance between 700 and 2500", &d).is_ok());
        assert!(parse_predicate("origin in (CA)", &d).is_ok());
        assert!(parse_predicate("origin = CA and dest = NY", &d).is_ok());
        assert!(parse_statement("count where origin = CA", &d).is_ok());
        assert!(parse_statement("Top 2 dest Where origin = CA", &d).is_ok());
    }

    #[test]
    fn rejects_malformed_input() {
        let d = dataset();
        assert!(parse_predicate("", &d).is_err());
        assert!(parse_predicate("origin", &d).is_err());
        assert!(parse_predicate("origin =", &d).is_err());
        assert!(parse_predicate("nosuch = CA", &d).is_err());
        assert!(parse_predicate("origin = TX", &d).is_err());
        assert!(parse_predicate("distance BETWEEN 5", &d).is_err());
        assert!(parse_predicate("origin IN CA", &d).is_err());
        assert!(parse_predicate("origin = CA dest = NY", &d).is_err());
        assert!(parse_predicate("distance BETWEEN 2500 AND 700", &d).is_err());
        assert!(parse_predicate("origin <", &d).is_err());
    }

    #[test]
    fn parses_count_statements() {
        let d = dataset();
        let s = parse_statement("COUNT", &d).unwrap();
        assert_eq!(
            s,
            Statement::Count {
                pred: Predicate::all()
            }
        );
        let s = parse_statement("COUNT(*) WHERE origin = CA AND dest = NY", &d).unwrap();
        let Statement::Count { pred } = s else {
            panic!("expected Count")
        };
        assert_eq!(pred.clauses().len(), 2);
    }

    #[test]
    fn parses_aggregates_and_group_by() {
        let d = dataset();
        let s = parse_statement("SUM(distance) WHERE origin = CA", &d).unwrap();
        assert!(matches!(
            s,
            Statement::Sum {
                attr: AttrId(2),
                ..
            }
        ));
        let s = parse_statement("AVG(distance)", &d).unwrap();
        assert!(matches!(
            s,
            Statement::Avg {
                attr: AttrId(2),
                ..
            }
        ));

        let s = parse_statement("GROUP BY origin WHERE dest = CA", &d).unwrap();
        assert!(matches!(
            s,
            Statement::GroupBy {
                attr: AttrId(0),
                by2: None,
                ..
            }
        ));
        // COUNT-leading form with two group attributes.
        let s = parse_statement("COUNT WHERE dest = CA GROUP BY origin, dest", &d).unwrap();
        assert!(matches!(
            s,
            Statement::GroupBy {
                attr: AttrId(0),
                by2: Some(AttrId(1)),
                ..
            }
        ));
    }

    #[test]
    fn parses_top_k_and_sample() {
        let d = dataset();
        let s = parse_statement("TOP 3 dest WHERE origin IN (CA, NY)", &d).unwrap();
        assert!(matches!(
            s,
            Statement::TopK {
                attr: AttrId(1),
                k: 3,
                ..
            }
        ));
        assert_eq!(
            parse_statement("SAMPLE 100 SEED 7", &d).unwrap(),
            Statement::Sample { k: 100, seed: 7 }
        );
        assert_eq!(
            parse_statement("SAMPLE 5", &d).unwrap(),
            Statement::Sample { k: 5, seed: 0 }
        );
    }

    #[test]
    fn rejects_malformed_statements() {
        let d = dataset();
        assert!(parse_statement("", &d).is_err());
        assert!(parse_statement("EXPLAIN COUNT", &d).is_err());
        assert!(parse_statement("COUNT(origin)", &d).is_err());
        assert!(parse_statement("SUM origin", &d).is_err());
        assert!(parse_statement("SUM(nosuch)", &d).is_err());
        assert!(parse_statement("GROUP origin", &d).is_err());
        assert!(parse_statement("GROUP BY origin, dest, distance", &d).is_err());
        assert!(parse_statement("TOP x dest", &d).is_err());
        assert!(parse_statement("SAMPLE", &d).is_err());
        assert!(parse_statement("COUNT WHERE origin = CA trailing", &d).is_err());
    }

    #[test]
    fn schema_resolver_parses_codes_and_bins() {
        let d = dataset();
        let schema = d.table.schema().clone();
        // Categorical values are dense codes under the schema resolver.
        let p = parse_predicate("origin = 1 AND distance >= 700", &schema).unwrap();
        assert_eq!(p.clauses()[0], (AttrId(0), AttrPredicate::Point(1)));
        assert!(matches!(p.clauses()[1].1, AttrPredicate::Range { .. }));
        // Out-of-domain codes and non-numeric values are rejected.
        assert!(parse_predicate("origin = 99", &schema).is_err());
        assert!(parse_predicate("origin = CA", &schema).is_err());
        let s = parse_statement("TOP 2 dest WHERE origin = 0", &schema).unwrap();
        assert!(matches!(s, Statement::TopK { k: 2, .. }));
    }
}
