//! A small textual predicate language for interactive exploration.
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! predicate := clause ( AND clause )*
//! clause    := attr '=' value
//!            | attr BETWEEN value AND value
//!            | attr IN '(' value ( ',' value )* ')'
//! ```
//!
//! Attribute names and values are resolved through a [`Resolver`] so the
//! same parser serves dictionary-coded categorical columns ("origin = CA")
//! and binned numeric columns ("distance BETWEEN 100 AND 800", mapped to
//! bucket ranges).

use crate::error::{Result, StorageError};
use crate::predicate::Predicate;
use crate::schema::AttrId;

/// Resolves attribute names and user-facing values to dense codes.
pub trait Resolver {
    /// The attribute id for a name.
    fn attr(&self, name: &str) -> Result<AttrId>;
    /// The dense code for a textual value of `attr`.
    fn code(&self, attr: AttrId, value: &str) -> Result<u32>;
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Word(String),
    Equals,
    LParen,
    RParen,
    Comma,
}

fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let mut word = String::new();
    let flush = |word: &mut String, tokens: &mut Vec<Token>| {
        if !word.is_empty() {
            tokens.push(Token::Word(std::mem::take(word)));
        }
    };
    for c in input.chars() {
        match c {
            '=' => {
                flush(&mut word, &mut tokens);
                tokens.push(Token::Equals);
            }
            '(' => {
                flush(&mut word, &mut tokens);
                tokens.push(Token::LParen);
            }
            ')' => {
                flush(&mut word, &mut tokens);
                tokens.push(Token::RParen);
            }
            ',' => {
                flush(&mut word, &mut tokens);
                tokens.push(Token::Comma);
            }
            c if c.is_whitespace() => flush(&mut word, &mut tokens),
            c => word.push(c),
        }
    }
    flush(&mut word, &mut tokens);
    if tokens.is_empty() {
        return Err(StorageError::UnknownAttribute("empty predicate".into()));
    }
    Ok(tokens)
}

struct Parser<'a, R: Resolver + ?Sized> {
    tokens: Vec<Token>,
    pos: usize,
    resolver: &'a R,
}

impl<'a, R: Resolver + ?Sized> Parser<'a, R> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<Token> {
        let t =
            self.tokens.get(self.pos).cloned().ok_or_else(|| {
                StorageError::UnknownAttribute("unexpected end of predicate".into())
            })?;
        self.pos += 1;
        Ok(t)
    }

    fn expect_word(&mut self, what: &str) -> Result<String> {
        match self.next()? {
            Token::Word(w) => Ok(w),
            other => Err(StorageError::UnknownAttribute(format!(
                "expected {what}, found {other:?}"
            ))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        let w = self.expect_word(kw)?;
        if w.eq_ignore_ascii_case(kw) {
            Ok(())
        } else {
            Err(StorageError::UnknownAttribute(format!(
                "expected {kw}, found {w:?}"
            )))
        }
    }

    fn clause(&mut self, pred: Predicate) -> Result<Predicate> {
        let attr_name = self.expect_word("attribute name")?;
        let attr = self.resolver.attr(&attr_name)?;
        match self.next()? {
            Token::Equals => {
                let value = self.expect_word("value")?;
                Ok(pred.eq(attr, self.resolver.code(attr, &value)?))
            }
            Token::Word(w) if w.eq_ignore_ascii_case("between") => {
                let lo = self.expect_word("lower bound")?;
                self.expect_keyword("and")?;
                let hi = self.expect_word("upper bound")?;
                let (lo, hi) = (
                    self.resolver.code(attr, &lo)?,
                    self.resolver.code(attr, &hi)?,
                );
                if lo > hi {
                    return Err(StorageError::InvalidRange { lo, hi });
                }
                Ok(pred.between(attr, lo, hi))
            }
            Token::Word(w) if w.eq_ignore_ascii_case("in") => {
                match self.next()? {
                    Token::LParen => {}
                    other => {
                        return Err(StorageError::UnknownAttribute(format!(
                            "expected ( after IN, found {other:?}"
                        )))
                    }
                }
                let mut values = Vec::new();
                loop {
                    let v = self.expect_word("value")?;
                    values.push(self.resolver.code(attr, &v)?);
                    match self.next()? {
                        Token::Comma => continue,
                        Token::RParen => break,
                        other => {
                            return Err(StorageError::UnknownAttribute(format!(
                                "expected , or ) in IN list, found {other:?}"
                            )))
                        }
                    }
                }
                Ok(pred.in_set(attr, values))
            }
            other => Err(StorageError::UnknownAttribute(format!(
                "expected =, BETWEEN, or IN after {attr_name:?}, found {other:?}"
            ))),
        }
    }
}

/// Parses a textual predicate against a resolver.
pub fn parse_predicate<R: Resolver + ?Sized>(input: &str, resolver: &R) -> Result<Predicate> {
    let mut parser = Parser {
        tokens: tokenize(input)?,
        pos: 0,
        resolver,
    };
    let mut pred = parser.clause(Predicate::new())?;
    while let Some(tok) = parser.peek() {
        match tok {
            Token::Word(w) if w.eq_ignore_ascii_case("and") => {
                parser.pos += 1;
                pred = parser.clause(pred)?;
            }
            other => {
                return Err(StorageError::UnknownAttribute(format!(
                    "expected AND, found {other:?}"
                )))
            }
        }
    }
    Ok(pred)
}

impl Resolver for crate::csv::CsvDataset {
    fn attr(&self, name: &str) -> Result<AttrId> {
        self.table.schema().attr_by_name(name)
    }

    fn code(&self, attr: AttrId, value: &str) -> Result<u32> {
        self.code_of(attr, value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csv::{load_str, CsvOptions};
    use crate::predicate::AttrPredicate;

    fn dataset() -> crate::csv::CsvDataset {
        load_str(
            "origin,dest,distance\nCA,NY,2500\nCA,FL,2300\nNY,CA,2500\nWA,CA,700\n",
            &CsvOptions::default(),
        )
        .unwrap()
    }

    #[test]
    fn parses_equality_on_categorical() {
        let d = dataset();
        let p = parse_predicate("origin = CA", &d).unwrap();
        assert_eq!(p.clauses().len(), 1);
        let ca = d.code_of(AttrId(0), "CA").unwrap();
        assert_eq!(p.clauses()[0], (AttrId(0), AttrPredicate::Point(ca)));
    }

    #[test]
    fn parses_between_on_numeric() {
        let d = dataset();
        let p = parse_predicate("distance BETWEEN 700 AND 2400", &d).unwrap();
        let (attr, clause) = &p.clauses()[0];
        assert_eq!(*attr, AttrId(2));
        assert!(matches!(clause, AttrPredicate::Range { .. }));
    }

    #[test]
    fn parses_conjunctions_and_in_lists() {
        let d = dataset();
        let p = parse_predicate("origin IN (CA, WA) AND dest = CA", &d).unwrap();
        assert_eq!(p.clauses().len(), 2);
        assert!(matches!(p.clauses()[0].1, AttrPredicate::Set(_)));
        // Count through the engine: CA→CA never happens, WA→CA once.
        let c = crate::exec::count(&d.table, &p).unwrap();
        assert_eq!(c, 1);
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let d = dataset();
        assert!(parse_predicate("distance between 700 and 2500", &d).is_ok());
        assert!(parse_predicate("origin in (CA)", &d).is_ok());
        assert!(parse_predicate("origin = CA and dest = NY", &d).is_ok());
    }

    #[test]
    fn rejects_malformed_input() {
        let d = dataset();
        assert!(parse_predicate("", &d).is_err());
        assert!(parse_predicate("origin", &d).is_err());
        assert!(parse_predicate("origin =", &d).is_err());
        assert!(parse_predicate("nosuch = CA", &d).is_err());
        assert!(parse_predicate("origin = TX", &d).is_err());
        assert!(parse_predicate("distance BETWEEN 5", &d).is_err());
        assert!(parse_predicate("origin IN CA", &d).is_err());
        assert!(parse_predicate("origin = CA dest = NY", &d).is_err());
        assert!(parse_predicate("distance BETWEEN 2500 AND 700", &d).is_err());
    }
}
