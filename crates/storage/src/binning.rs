//! Equi-width bucketization of continuous domains.
//!
//! The paper bucketizes every real-valued attribute into equi-width bins
//! ("We use equi-width buckets to facilitate transforming a user's query into
//! our domain and to avoid hiding outliers", Sec. 6.1). A [`Binner`] maps raw
//! values to bin codes and query ranges to bin ranges.

use crate::error::{Result, StorageError};

/// An equi-width bucketizer over the closed interval `[lo, hi]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Binner {
    lo: f64,
    hi: f64,
    bins: usize,
    width: f64,
}

impl Binner {
    /// Creates a binner splitting `[lo, hi]` into `bins` equal-width buckets.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self> {
        if bins == 0 || !lo.is_finite() || !hi.is_finite() || lo >= hi {
            return Err(StorageError::InvalidBinSpec { lo, hi, bins });
        }
        Ok(Binner {
            lo,
            hi,
            bins,
            width: (hi - lo) / bins as f64,
        })
    }

    /// Number of buckets (the bucketized attribute's domain size).
    #[inline]
    pub fn num_bins(&self) -> usize {
        self.bins
    }

    /// Lower bound of the binned interval.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound of the binned interval.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Maps a raw value to its bucket code, clamping values outside
    /// `[lo, hi]` into the first/last bucket (outliers stay visible rather
    /// than being dropped).
    #[inline]
    pub fn bin(&self, x: f64) -> u32 {
        if x <= self.lo {
            return 0;
        }
        let b = ((x - self.lo) / self.width) as usize;
        b.min(self.bins - 1) as u32
    }

    /// The half-open value interval `[lo, hi)` covered by bucket `b`
    /// (the final bucket is closed at the top).
    pub fn bin_bounds(&self, b: u32) -> (f64, f64) {
        let lo = self.lo + self.width * b as f64;
        (lo, lo + self.width)
    }

    /// Midpoint of bucket `b`, used as the bucket-representative value for
    /// `SUM`/`AVG` estimation.
    pub fn midpoint(&self, b: u32) -> f64 {
        let (lo, hi) = self.bin_bounds(b);
        (lo + hi) / 2.0
    }

    /// Maps a raw value range `[vlo, vhi]` to the inclusive bucket range
    /// covering it. Returns `None` when the range misses `[lo, hi]` entirely.
    pub fn bin_range(&self, vlo: f64, vhi: f64) -> Option<(u32, u32)> {
        if vlo > vhi || vhi < self.lo || vlo > self.hi {
            return None;
        }
        Some((self.bin(vlo.max(self.lo)), self.bin(vhi.min(self.hi))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_specs() {
        assert!(Binner::new(0.0, 1.0, 0).is_err());
        assert!(Binner::new(1.0, 1.0, 4).is_err());
        assert!(Binner::new(2.0, 1.0, 4).is_err());
        assert!(Binner::new(f64::NAN, 1.0, 4).is_err());
    }

    #[test]
    fn bins_are_equi_width() {
        let b = Binner::new(0.0, 100.0, 10).unwrap();
        assert_eq!(b.num_bins(), 10);
        assert_eq!(b.bin(0.0), 0);
        assert_eq!(b.bin(9.99), 0);
        assert_eq!(b.bin(10.0), 1);
        assert_eq!(b.bin(99.99), 9);
        assert_eq!(b.bin(100.0), 9); // top edge included in last bin
    }

    #[test]
    fn outliers_clamp() {
        let b = Binner::new(0.0, 100.0, 10).unwrap();
        assert_eq!(b.bin(-5.0), 0);
        assert_eq!(b.bin(1e9), 9);
    }

    #[test]
    fn bounds_and_midpoints() {
        let b = Binner::new(0.0, 100.0, 4).unwrap();
        assert_eq!(b.bin_bounds(1), (25.0, 50.0));
        assert_eq!(b.midpoint(1), 37.5);
    }

    #[test]
    fn range_mapping() {
        let b = Binner::new(0.0, 100.0, 10).unwrap();
        assert_eq!(b.bin_range(15.0, 34.0), Some((1, 3)));
        assert_eq!(b.bin_range(-50.0, -1.0), None);
        assert_eq!(b.bin_range(200.0, 300.0), None);
        // Partially overlapping ranges clamp to the domain.
        assert_eq!(b.bin_range(-10.0, 5.0), Some((0, 0)));
        assert_eq!(b.bin_range(95.0, 500.0), Some((9, 9)));
    }

    #[test]
    fn every_value_round_trips_into_its_bin_bounds() {
        let b = Binner::new(-3.0, 7.0, 13).unwrap();
        for i in 0..1000 {
            let x = -3.0 + 10.0 * (i as f64) / 999.0;
            let code = b.bin(x);
            let (lo, hi) = b.bin_bounds(code);
            assert!(
                x >= lo - 1e-9 && (x <= hi + 1e-9),
                "value {x} not within bounds of bin {code}: [{lo}, {hi})"
            );
        }
    }
}
