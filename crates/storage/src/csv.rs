//! CSV ingestion with schema inference.
//!
//! The paper loads its datasets into PostgreSQL and bucketizes them there
//! (Sec. 6.1). This module is the equivalent ingestion path: read a
//! delimited file, infer per-column types (numeric columns get equi-width
//! bins, everything else becomes dictionary-coded categorical), and produce
//! a [`Table`] plus the dictionaries needed to translate user queries.

use crate::binning::Binner;
use crate::dictionary::Dictionary;
use crate::error::{Result, StorageError};
use crate::schema::{AttrId, Attribute, Schema};
use crate::table::Table;

/// Per-column ingestion policy.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnSpec {
    /// Infer: numeric if every non-empty value parses as a number,
    /// categorical otherwise.
    Auto,
    /// Force dictionary-coded categorical.
    Categorical,
    /// Force numeric with this many equi-width bins.
    Numeric {
        /// Number of equi-width buckets.
        bins: usize,
    },
}

/// Ingestion options.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field delimiter (default `,`).
    pub delimiter: char,
    /// Whether the first row is a header (default true).
    pub header: bool,
    /// Default bin count for inferred numeric columns.
    pub default_bins: usize,
    /// Per-column overrides by position; missing entries mean [`ColumnSpec::Auto`].
    pub columns: Vec<ColumnSpec>,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            delimiter: ',',
            header: true,
            default_bins: 64,
            columns: Vec::new(),
        }
    }
}

/// A loaded dataset: the coded table plus per-column dictionaries for
/// translating between user values and dense codes.
#[derive(Debug, Clone)]
pub struct CsvDataset {
    /// The dictionary-encoded relation.
    pub table: Table,
    /// Dictionaries for categorical columns (`None` for numeric columns).
    pub dictionaries: Vec<Option<Dictionary>>,
}

impl CsvDataset {
    /// Translates a user-facing value of `attr` to its dense code:
    /// dictionary lookup for categorical columns, binning for numeric ones.
    pub fn code_of(&self, attr: AttrId, value: &str) -> Result<u32> {
        let attribute = self.table.schema().attr(attr)?;
        match (&self.dictionaries[attr.0], attribute.binner()) {
            (Some(dict), _) => dict
                .code(value)
                .ok_or_else(|| StorageError::UnknownAttribute(value.to_string())),
            (None, Some(binner)) => {
                let x: f64 = value
                    .parse()
                    .map_err(|_| StorageError::UnknownAttribute(value.to_string()))?;
                Ok(binner.bin(x))
            }
            (None, None) => Err(StorageError::UnknownAttribute(value.to_string())),
        }
    }

    /// Human-readable label of a code (dictionary value or bin bounds).
    pub fn label_of(&self, attr: AttrId, code: u32) -> Result<String> {
        let attribute = self.table.schema().attr(attr)?;
        Ok(match (&self.dictionaries[attr.0], attribute.binner()) {
            (Some(dict), _) => dict.value(code).unwrap_or("?").to_string(),
            (None, Some(binner)) => {
                let (lo, hi) = binner.bin_bounds(code);
                format!("[{lo:.3}, {hi:.3})")
            }
            (None, None) => code.to_string(),
        })
    }
}

/// Splits one CSV line (no quoting support — the evaluation datasets are
/// plain numeric/word fields; quoted-field support is future work).
fn split_line(line: &str, delimiter: char) -> Vec<String> {
    line.split(delimiter)
        .map(|s| s.trim().to_string())
        .collect()
}

/// Parses CSV text into a dataset.
pub fn load_str(text: &str, options: &CsvOptions) -> Result<CsvDataset> {
    let mut lines = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'));

    let (names, first_data): (Vec<String>, Option<Vec<String>>) = if options.header {
        let header = lines.next().ok_or_else(|| StorageError::SchemaMismatch {
            reason: "CSV input is empty (no header line)".to_string(),
        })?;
        (split_line(header, options.delimiter), None)
    } else {
        let first = lines.next().map(|l| split_line(l, options.delimiter));
        let count = first.as_ref().map_or(0, Vec::len);
        ((0..count).map(|i| format!("col{i}")).collect(), first)
    };
    let arity = names.len();
    if arity == 0 {
        return Err(StorageError::SchemaMismatch {
            reason: "CSV input has no columns".to_string(),
        });
    }

    // Materialize raw rows.
    let mut raw: Vec<Vec<String>> = Vec::new();
    if let Some(row) = first_data {
        raw.push(row);
    }
    for line in lines {
        let row = split_line(line, options.delimiter);
        if row.len() != arity {
            return Err(StorageError::ArityMismatch {
                expected: arity,
                got: row.len(),
            });
        }
        raw.push(row);
    }
    if raw.is_empty() {
        return Err(StorageError::SchemaMismatch {
            reason: "CSV input has no data rows".to_string(),
        });
    }

    // Infer column kinds.
    let spec_of = |i: usize| options.columns.get(i).cloned().unwrap_or(ColumnSpec::Auto);
    let mut attributes = Vec::with_capacity(arity);
    let mut dictionaries: Vec<Option<Dictionary>> = Vec::with_capacity(arity);
    let mut binners: Vec<Option<Binner>> = Vec::with_capacity(arity);

    for i in 0..arity {
        let numeric = match spec_of(i) {
            ColumnSpec::Categorical => None,
            ColumnSpec::Numeric { bins } => Some(bins),
            ColumnSpec::Auto => raw
                .iter()
                .all(|r| r[i].parse::<f64>().is_ok())
                .then_some(options.default_bins),
        };
        match numeric {
            Some(bins) => {
                let values: Vec<f64> = raw
                    .iter()
                    .map(|r| {
                        r[i].parse::<f64>()
                            .map_err(|_| StorageError::CodeOutOfDomain {
                                attr: names[i].clone(),
                                code: 0,
                                domain_size: 0,
                            })
                    })
                    .collect::<Result<_>>()?;
                let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
                let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                // Degenerate constant columns get a tiny positive width.
                let hi = if hi > lo { hi } else { lo + 1.0 };
                let binner = Binner::new(lo, hi, bins.max(1))?;
                attributes.push(Attribute::binned(&names[i], binner.clone()));
                dictionaries.push(None);
                binners.push(Some(binner));
            }
            None => {
                let mut dict = Dictionary::new();
                for r in &raw {
                    dict.intern(r[i].clone());
                }
                attributes.push(Attribute::categorical(&names[i], dict.len())?);
                dictionaries.push(Some(dict));
                binners.push(None);
            }
        }
    }

    // Encode rows.
    let schema = Schema::new(attributes);
    let mut table = Table::with_capacity(schema, raw.len());
    let mut coded = vec![0u32; arity];
    for row in &raw {
        for i in 0..arity {
            coded[i] = match (&dictionaries[i], &binners[i]) {
                (Some(dict), _) => dict.code(&row[i]).expect("interned above"),
                (None, Some(binner)) => binner.bin(row[i].parse::<f64>().expect("validated")),
                (None, None) => unreachable!("every column is categorical or binned"),
            };
        }
        table.push_row(&coded)?;
    }

    Ok(CsvDataset {
        table,
        dictionaries,
    })
}

/// Loads a CSV file from disk.
pub fn load_file(path: &std::path::Path, options: &CsvOptions) -> Result<CsvDataset> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| StorageError::UnknownAttribute(format!("{}: {e}", path.display())))?;
    load_str(&text, options)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
origin,dest,distance
CA,NY,2500
CA,FL,2300
NY,CA,2500
WA,CA,700
CA,NY,2450
";

    #[test]
    fn infers_categorical_and_numeric() {
        let d = load_str(SAMPLE, &CsvOptions::default()).unwrap();
        let schema = d.table.schema();
        assert_eq!(schema.arity(), 3);
        assert_eq!(schema.attr(AttrId(0)).unwrap().name(), "origin");
        assert!(d.dictionaries[0].is_some());
        assert!(d.dictionaries[1].is_some());
        assert!(d.dictionaries[2].is_none()); // numeric
        assert_eq!(d.table.num_rows(), 5);
        assert!(schema.attr(AttrId(2)).unwrap().binner().is_some());
    }

    #[test]
    fn code_translation_round_trips() {
        let d = load_str(SAMPLE, &CsvOptions::default()).unwrap();
        let ca = d.code_of(AttrId(0), "CA").unwrap();
        assert_eq!(d.label_of(AttrId(0), ca).unwrap(), "CA");
        // Numeric values map through the binner.
        let code = d.code_of(AttrId(2), "2500").unwrap();
        let label = d.label_of(AttrId(2), code).unwrap();
        assert!(label.starts_with('['));
        assert!(d.code_of(AttrId(0), "TX").is_err());
        assert!(d.code_of(AttrId(2), "not-a-number").is_err());
    }

    #[test]
    fn counts_match_raw_data() {
        let d = load_str(SAMPLE, &CsvOptions::default()).unwrap();
        let ca = d.code_of(AttrId(0), "CA").unwrap();
        let c = crate::exec::count(
            &d.table,
            &crate::predicate::Predicate::new().eq(AttrId(0), ca),
        )
        .unwrap();
        assert_eq!(c, 3);
    }

    #[test]
    fn forced_column_specs() {
        // Treat distance as categorical, and force 4 bins if numeric.
        let mut options = CsvOptions {
            columns: vec![ColumnSpec::Auto, ColumnSpec::Auto, ColumnSpec::Categorical],
            ..CsvOptions::default()
        };
        let d = load_str(SAMPLE, &options).unwrap();
        assert!(d.dictionaries[2].is_some());
        assert_eq!(d.table.schema().domain_size(AttrId(2)).unwrap(), 4); // 2500,2300,700,2450

        options.columns = vec![
            ColumnSpec::Auto,
            ColumnSpec::Auto,
            ColumnSpec::Numeric { bins: 4 },
        ];
        let d = load_str(SAMPLE, &options).unwrap();
        assert_eq!(d.table.schema().domain_size(AttrId(2)).unwrap(), 4);
        assert!(d.dictionaries[2].is_none());
    }

    #[test]
    fn headerless_and_custom_delimiter() {
        let text = "a|1\nb|2\na|3\n";
        let options = CsvOptions {
            delimiter: '|',
            header: false,
            ..CsvOptions::default()
        };
        let d = load_str(text, &options).unwrap();
        assert_eq!(d.table.num_rows(), 3);
        assert_eq!(d.table.schema().attr(AttrId(0)).unwrap().name(), "col0");
    }

    #[test]
    fn ragged_rows_rejected() {
        let text = "a,b\n1,2\n3\n";
        assert!(matches!(
            load_str(text, &CsvOptions::default()),
            Err(StorageError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn empty_and_comment_lines_skipped() {
        let text = "# comment\na,b\n\n1,x\n# another\n2,y\n";
        let d = load_str(text, &CsvOptions::default()).unwrap();
        assert_eq!(d.table.num_rows(), 2);
    }

    #[test]
    fn constant_numeric_column_is_safe() {
        let text = "v\n5\n5\n5\n";
        let d = load_str(text, &CsvOptions::default()).unwrap();
        assert_eq!(d.table.num_rows(), 3);
        // All rows land in bin 0.
        assert!(d
            .table
            .column(AttrId(0))
            .unwrap()
            .codes()
            .iter()
            .all(|&c| c == 0));
    }

    #[test]
    fn empty_input_rejected() {
        assert!(load_str("", &CsvOptions::default()).is_err());
        assert!(load_str("a,b\n", &CsvOptions::default()).is_err());
    }
}
