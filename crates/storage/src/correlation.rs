//! Attribute-pair correlation measures.
//!
//! Sec. 4.3 of the paper picks which attribute pairs get 2D statistics using
//! pairwise correlation ("This can be checked by calculating the chi-squared
//! coefficient and seeing if it is close to 0"). We implement the chi-squared
//! statistic and its normalized form, Cramér's V, plus a uniformity test used
//! to skip near-uniform attributes (like `fl_date`).

use crate::error::Result;
use crate::histogram::{Histogram1D, Histogram2D};
use crate::schema::AttrId;
use crate::table::Table;

/// Pearson's chi-squared statistic of independence for a contingency table.
///
/// Cells whose expected count is zero (an empty marginal row/column) are
/// skipped: they carry no evidence about dependence.
pub fn chi_squared(hist: &Histogram2D) -> f64 {
    let n = hist.total() as f64;
    if n == 0.0 {
        return 0.0;
    }
    let mx = hist.marginal_x();
    let my = hist.marginal_y();
    let (nx, ny) = hist.dims();
    let mut chi2 = 0.0;
    let _ = (nx, ny);
    for (x, &mxc) in mx.iter().enumerate() {
        if mxc == 0 {
            continue;
        }
        for (y, &myc) in my.iter().enumerate() {
            if myc == 0 {
                continue;
            }
            let expected = mxc as f64 * myc as f64 / n;
            let observed = hist.get(x as u32, y as u32) as f64;
            let d = observed - expected;
            chi2 += d * d / expected;
        }
    }
    chi2
}

/// Cramér's V: chi-squared normalized to `[0, 1]`, comparable across pairs
/// with different domain sizes. `0` means independent, `1` means perfectly
/// associated.
pub fn cramers_v(hist: &Histogram2D) -> f64 {
    let n = hist.total() as f64;
    if n == 0.0 {
        return 0.0;
    }
    // Effective category counts: only values that actually occur.
    let rx = hist.marginal_x().iter().filter(|&&c| c > 0).count();
    let ry = hist.marginal_y().iter().filter(|&&c| c > 0).count();
    let k = rx.min(ry);
    if k <= 1 {
        return 0.0;
    }
    (chi_squared(hist) / (n * (k - 1) as f64)).sqrt().min(1.0)
}

/// Chi-squared distance of a 1D histogram from the uniform distribution,
/// normalized per-row. Small values (≈0) mean the attribute is near-uniform
/// and — per the paper — does not need 2D statistics to correct the MaxEnt
/// uniformity assumption.
pub fn uniformity_deviation(hist: &Histogram1D) -> f64 {
    let n = hist.total() as f64;
    let k = hist.counts().len() as f64;
    if n == 0.0 || k == 0.0 {
        return 0.0;
    }
    let expected = n / k;
    let chi2: f64 = hist
        .counts()
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum();
    chi2 / n
}

/// A scored attribute pair.
#[derive(Debug, Clone, PartialEq)]
pub struct PairScore {
    /// First attribute of the pair (lower id).
    pub x: AttrId,
    /// Second attribute of the pair (higher id).
    pub y: AttrId,
    /// Cramér's V association strength in `[0, 1]`.
    pub cramers_v: f64,
    /// Raw chi-squared statistic.
    pub chi_squared: f64,
}

/// Scores every attribute pair among `attrs` by association strength,
/// strongest first. This is the input to the pair-selection strategies of
/// Sec. 4.3 (correlation-only vs. attribute-cover).
pub fn rank_pairs(table: &Table, attrs: &[AttrId]) -> Result<Vec<PairScore>> {
    let mut scores = Vec::new();
    for (i, &x) in attrs.iter().enumerate() {
        for &y in &attrs[i + 1..] {
            let hist = Histogram2D::compute(table, x, y)?;
            scores.push(PairScore {
                x,
                y,
                cramers_v: cramers_v(&hist),
                chi_squared: chi_squared(&hist),
            });
        }
    }
    scores.sort_by(|a, b| b.cramers_v.total_cmp(&a.cramers_v));
    Ok(scores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Schema};

    fn two_attr_table(rows: Vec<Vec<u32>>, nx: usize, ny: usize) -> Table {
        let schema = Schema::new(vec![
            Attribute::categorical("x", nx).unwrap(),
            Attribute::categorical("y", ny).unwrap(),
        ]);
        Table::from_rows(schema, rows).unwrap()
    }

    #[test]
    fn independent_attributes_score_zero() {
        // Perfectly independent 2x2: every cell has the product marginal.
        let mut rows = Vec::new();
        for x in 0..2u32 {
            for y in 0..2u32 {
                for _ in 0..25 {
                    rows.push(vec![x, y]);
                }
            }
        }
        let t = two_attr_table(rows, 2, 2);
        let h = Histogram2D::compute(&t, AttrId(0), AttrId(1)).unwrap();
        assert!(chi_squared(&h).abs() < 1e-9);
        assert!(cramers_v(&h).abs() < 1e-9);
    }

    #[test]
    fn perfectly_correlated_attributes_score_one() {
        // y == x for all rows.
        let mut rows = Vec::new();
        for x in 0..3u32 {
            for _ in 0..10 {
                rows.push(vec![x, x]);
            }
        }
        let t = two_attr_table(rows, 3, 3);
        let h = Histogram2D::compute(&t, AttrId(0), AttrId(1)).unwrap();
        assert!((cramers_v(&h) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn uniformity_of_flat_histogram_is_zero() {
        let rows: Vec<Vec<u32>> = (0..40).map(|i| vec![i % 4, 0]).collect();
        let t = two_attr_table(rows, 4, 1);
        let h = Histogram1D::compute(&t, AttrId(0)).unwrap();
        assert!(uniformity_deviation(&h) < 1e-9);
    }

    #[test]
    fn skewed_histogram_deviates_from_uniform() {
        let mut rows: Vec<Vec<u32>> = (0..40).map(|_| vec![0, 0]).collect();
        rows.push(vec![1, 0]);
        let t = two_attr_table(rows, 4, 1);
        let h = Histogram1D::compute(&t, AttrId(0)).unwrap();
        assert!(uniformity_deviation(&h) > 1.0);
    }

    #[test]
    fn rank_pairs_orders_by_association() {
        // x0 and x1 perfectly correlated; x2 independent of both.
        let schema = Schema::new(vec![
            Attribute::categorical("a", 2).unwrap(),
            Attribute::categorical("b", 2).unwrap(),
            Attribute::categorical("c", 2).unwrap(),
        ]);
        let mut rows = Vec::new();
        for i in 0..200u32 {
            let a = i % 2;
            let c = (i / 2) % 2;
            rows.push(vec![a, a, c]);
        }
        let t = Table::from_rows(schema, rows).unwrap();
        let ranked = rank_pairs(&t, &[AttrId(0), AttrId(1), AttrId(2)]).unwrap();
        assert_eq!(ranked.len(), 3);
        assert_eq!((ranked[0].x, ranked[0].y), (AttrId(0), AttrId(1)));
        assert!((ranked[0].cramers_v - 1.0).abs() < 1e-9);
        assert!(ranked[1].cramers_v < 0.2);
    }

    #[test]
    fn empty_table_is_safe() {
        let t = two_attr_table(vec![], 2, 2);
        let h = Histogram2D::compute(&t, AttrId(0), AttrId(1)).unwrap();
        assert_eq!(chi_squared(&h), 0.0);
        assert_eq!(cramers_v(&h), 0.0);
    }
}
