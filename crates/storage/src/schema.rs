//! Relation schemas over discrete, ordered active domains.
//!
//! EntropyDB models a single relation `R(A_1, ..., A_m)` where every
//! attribute has a finite, ordered active domain `D_i` (continuous attributes
//! are bucketized first; see [`crate::binning`]). Values are stored as dense
//! dictionary codes `0..N_i`, which is also the variable indexing the MaxEnt
//! model uses.

use crate::binning::Binner;
use crate::error::{Result, StorageError};
use std::fmt;

/// Identifier of an attribute within a [`Schema`] (its position).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrId(pub usize);

impl AttrId {
    /// The position of this attribute in the schema.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

/// How the dense codes of an attribute map back to user-facing values.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrKind {
    /// Categorical attribute: codes index into an external dictionary.
    Categorical,
    /// Numeric attribute bucketized into equi-width bins.
    Binned(Binner),
}

/// One attribute of a relation: a name, an active-domain size, and a kind.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribute {
    name: String,
    domain_size: usize,
    kind: AttrKind,
}

impl Attribute {
    /// Creates a categorical attribute with `domain_size` distinct codes.
    pub fn categorical(name: impl Into<String>, domain_size: usize) -> Result<Self> {
        let name = name.into();
        if domain_size == 0 {
            return Err(StorageError::EmptyDomain(name));
        }
        Ok(Attribute {
            name,
            domain_size,
            kind: AttrKind::Categorical,
        })
    }

    /// Creates a numeric attribute bucketized by `binner`; the domain size is
    /// the number of bins.
    pub fn binned(name: impl Into<String>, binner: Binner) -> Self {
        Attribute {
            name: name.into(),
            domain_size: binner.num_bins(),
            kind: AttrKind::Binned(binner),
        }
    }

    /// The attribute's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Size of the active domain (`N_i` in the paper).
    pub fn domain_size(&self) -> usize {
        self.domain_size
    }

    /// The attribute kind (categorical or binned numeric).
    pub fn kind(&self) -> &AttrKind {
        &self.kind
    }

    /// The binner, if this is a binned numeric attribute.
    pub fn binner(&self) -> Option<&Binner> {
        match &self.kind {
            AttrKind::Binned(b) => Some(b),
            AttrKind::Categorical => None,
        }
    }
}

/// An ordered list of attributes describing a single relation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schema {
    attributes: Vec<Attribute>,
}

impl Schema {
    /// Creates a schema from a list of attributes.
    pub fn new(attributes: Vec<Attribute>) -> Self {
        Schema { attributes }
    }

    /// Number of attributes (`m` in the paper).
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// All attributes in declaration order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Ids of all attributes in declaration order.
    pub fn attr_ids(&self) -> impl Iterator<Item = AttrId> + '_ {
        (0..self.attributes.len()).map(AttrId)
    }

    /// The attribute with the given id.
    pub fn attr(&self, id: AttrId) -> Result<&Attribute> {
        self.attributes
            .get(id.0)
            .ok_or(StorageError::AttrIdOutOfRange {
                id: id.0,
                arity: self.attributes.len(),
            })
    }

    /// Looks up an attribute id by name.
    pub fn attr_by_name(&self, name: &str) -> Result<AttrId> {
        self.attributes
            .iter()
            .position(|a| a.name == name)
            .map(AttrId)
            .ok_or_else(|| StorageError::UnknownAttribute(name.to_string()))
    }

    /// Active-domain size of attribute `id` (`N_i`).
    pub fn domain_size(&self, id: AttrId) -> Result<usize> {
        Ok(self.attr(id)?.domain_size())
    }

    /// Domain sizes of all attributes in order.
    pub fn domain_sizes(&self) -> Vec<usize> {
        self.attributes.iter().map(|a| a.domain_size()).collect()
    }

    /// `|Tup| = ∏ N_i`: the number of possible tuples. Saturates at
    /// `u128::MAX` for absurdly large schemas.
    pub fn tuple_space_size(&self) -> u128 {
        self.attributes
            .iter()
            .fold(1u128, |acc, a| acc.saturating_mul(a.domain_size() as u128))
    }

    /// Validates that `row` is a legal tuple for this schema.
    pub fn validate_row(&self, row: &[u32]) -> Result<()> {
        if row.len() != self.arity() {
            return Err(StorageError::ArityMismatch {
                expected: self.arity(),
                got: row.len(),
            });
        }
        for (attr, &code) in self.attributes.iter().zip(row) {
            if code as usize >= attr.domain_size {
                return Err(StorageError::CodeOutOfDomain {
                    attr: attr.name.clone(),
                    code,
                    domain_size: attr.domain_size,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc_schema() -> Schema {
        Schema::new(vec![
            Attribute::categorical("a", 2).unwrap(),
            Attribute::categorical("b", 3).unwrap(),
            Attribute::categorical("c", 4).unwrap(),
        ])
    }

    #[test]
    fn arity_and_domains() {
        let s = abc_schema();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.domain_sizes(), vec![2, 3, 4]);
        assert_eq!(s.tuple_space_size(), 24);
    }

    #[test]
    fn lookup_by_name() {
        let s = abc_schema();
        assert_eq!(s.attr_by_name("b").unwrap(), AttrId(1));
        assert!(matches!(
            s.attr_by_name("zz"),
            Err(StorageError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn empty_domain_rejected() {
        assert!(matches!(
            Attribute::categorical("x", 0),
            Err(StorageError::EmptyDomain(_))
        ));
    }

    #[test]
    fn row_validation() {
        let s = abc_schema();
        assert!(s.validate_row(&[1, 2, 3]).is_ok());
        assert!(matches!(
            s.validate_row(&[1, 2]),
            Err(StorageError::ArityMismatch { .. })
        ));
        assert!(matches!(
            s.validate_row(&[2, 0, 0]),
            Err(StorageError::CodeOutOfDomain { .. })
        ));
    }

    #[test]
    fn attr_id_out_of_range() {
        let s = abc_schema();
        assert!(matches!(
            s.attr(AttrId(9)),
            Err(StorageError::AttrIdOutOfRange { .. })
        ));
    }
}
