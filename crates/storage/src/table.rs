//! In-memory, dictionary-encoded columnar tables.
//!
//! A [`Table`] is an ordered bag of `n` tuples over a [`Schema`] — exactly the
//! paper's instance `I`. Storage is column-major `Vec<u32>` of dense codes,
//! which makes exact counting queries (the ground truth for every experiment)
//! a sequential scan per referenced column.

use crate::error::{Result, StorageError};
use crate::schema::{AttrId, Schema};

/// A single dictionary-encoded column.
#[derive(Debug, Clone, Default)]
pub struct Column {
    codes: Vec<u32>,
}

impl Column {
    fn with_capacity(cap: usize) -> Self {
        Column {
            codes: Vec::with_capacity(cap),
        }
    }

    /// The dense codes of this column, one per row.
    #[inline]
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }
}

/// A columnar relation instance: the ordered bag of tuples `I`.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    columns: Vec<Column>,
}

impl Table {
    /// Creates an empty table for `schema`.
    pub fn new(schema: Schema) -> Self {
        let columns = (0..schema.arity()).map(|_| Column::default()).collect();
        Table { schema, columns }
    }

    /// Creates an empty table with row capacity pre-reserved.
    pub fn with_capacity(schema: Schema, rows: usize) -> Self {
        let columns = (0..schema.arity())
            .map(|_| Column::with_capacity(rows))
            .collect();
        Table { schema, columns }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows (`n`, the instance cardinality).
    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Appends one tuple, validating arity and domain membership.
    pub fn push_row(&mut self, row: &[u32]) -> Result<()> {
        self.schema.validate_row(row)?;
        for (col, &code) in self.columns.iter_mut().zip(row) {
            col.codes.push(code);
        }
        Ok(())
    }

    /// Appends one tuple without validation.
    ///
    /// Callers (bulk generators) must guarantee `row` is schema-valid; debug
    /// builds still assert it.
    pub fn push_row_unchecked(&mut self, row: &[u32]) {
        debug_assert!(self.schema.validate_row(row).is_ok());
        for (col, &code) in self.columns.iter_mut().zip(row) {
            col.codes.push(code);
        }
    }

    /// Builds a table from an iterator of rows.
    pub fn from_rows<I>(schema: Schema, rows: I) -> Result<Self>
    where
        I: IntoIterator<Item = Vec<u32>>,
    {
        let mut t = Table::new(schema);
        for row in rows {
            t.push_row(&row)?;
        }
        Ok(t)
    }

    /// The column for attribute `id`.
    pub fn column(&self, id: AttrId) -> Result<&Column> {
        self.columns
            .get(id.0)
            .ok_or(StorageError::AttrIdOutOfRange {
                id: id.0,
                arity: self.schema.arity(),
            })
    }

    /// Materializes row `r` (mostly for tests and small examples).
    pub fn row(&self, r: usize) -> Option<Vec<u32>> {
        if r >= self.num_rows() {
            return None;
        }
        Some(self.columns.iter().map(|c| c.codes[r]).collect())
    }

    /// Appends all rows of `other`; schemas must match.
    pub fn append(&mut self, other: &Table) -> Result<()> {
        if self.schema != other.schema {
            return Err(StorageError::SchemaMismatch);
        }
        for (dst, src) in self.columns.iter_mut().zip(&other.columns) {
            dst.codes.extend_from_slice(&src.codes);
        }
        Ok(())
    }

    /// Approximate in-memory footprint in bytes (code payload only).
    pub fn payload_bytes(&self) -> usize {
        self.columns
            .iter()
            .map(|c| c.codes.len() * std::mem::size_of::<u32>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::categorical("a", 2).unwrap(),
            Attribute::categorical("b", 3).unwrap(),
        ])
    }

    #[test]
    fn push_and_read_back() {
        let mut t = Table::new(schema());
        t.push_row(&[0, 2]).unwrap();
        t.push_row(&[1, 1]).unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.row(0), Some(vec![0, 2]));
        assert_eq!(t.row(1), Some(vec![1, 1]));
        assert_eq!(t.row(2), None);
        assert_eq!(t.column(AttrId(1)).unwrap().codes(), &[2, 1]);
    }

    #[test]
    fn invalid_rows_rejected() {
        let mut t = Table::new(schema());
        assert!(t.push_row(&[0]).is_err());
        assert!(t.push_row(&[0, 3]).is_err());
        assert_eq!(t.num_rows(), 0);
    }

    #[test]
    fn from_rows_roundtrip() {
        let rows = vec![vec![0, 0], vec![1, 2], vec![0, 1]];
        let t = Table::from_rows(schema(), rows.clone()).unwrap();
        assert_eq!(t.num_rows(), 3);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(t.row(i).as_ref(), Some(row));
        }
    }

    #[test]
    fn append_requires_same_schema() {
        let mut a = Table::from_rows(schema(), vec![vec![0, 0]]).unwrap();
        let b = Table::from_rows(schema(), vec![vec![1, 1]]).unwrap();
        a.append(&b).unwrap();
        assert_eq!(a.num_rows(), 2);

        let other = Table::new(Schema::new(vec![Attribute::categorical("x", 2).unwrap()]));
        assert!(matches!(
            a.append(&other),
            Err(StorageError::SchemaMismatch)
        ));
    }
}
