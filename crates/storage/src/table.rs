//! In-memory, dictionary-encoded columnar tables.
//!
//! A [`Table`] is an ordered bag of `n` tuples over a [`Schema`] — exactly the
//! paper's instance `I`. Storage is column-major `Vec<u32>` of dense codes,
//! which makes exact counting queries (the ground truth for every experiment)
//! a sequential scan per referenced column.

use crate::error::{Result, StorageError};
use crate::schema::{AttrId, Schema};

/// How to split a table into horizontal shards (row partitions).
///
/// Both schemes are deterministic functions of the row contents (never of
/// row order across shards or of any thread schedule), so a partitioning is
/// reproducible and the shards of equal inputs are equal.
#[derive(Debug, Clone, PartialEq)]
pub enum Partitioning {
    /// Rows are assigned to `shards` buckets by an FNV-1a hash. With
    /// `attr: Some(a)` only that attribute's code is hashed (co-locating
    /// equal values, e.g. for per-value shard affinity); with `None` the
    /// whole tuple is hashed (a balanced spread).
    Hash { shards: usize, attr: Option<AttrId> },
    /// Rows are assigned by inclusive upper `bounds` on one attribute's
    /// dense codes: shard `i` holds rows with `code <= bounds[i]` (and
    /// above `bounds[i-1]`). Bounds must be strictly increasing and the
    /// last bound must cover the attribute's domain.
    Range { attr: AttrId, bounds: Vec<u32> },
}

impl Partitioning {
    /// Hash partitioning of whole tuples into `shards` buckets.
    pub fn hash(shards: usize) -> Self {
        Partitioning::Hash { shards, attr: None }
    }

    /// Hash partitioning on one attribute's code.
    pub fn hash_on(attr: AttrId, shards: usize) -> Self {
        Partitioning::Hash {
            shards,
            attr: Some(attr),
        }
    }

    /// Equi-width range partitioning of `attr`'s domain into `shards`
    /// contiguous code ranges.
    pub fn range(attr: AttrId, shards: usize, domain_size: usize) -> Result<Self> {
        if shards == 0 {
            return Err(StorageError::InvalidPartition(
                "range partitioning needs at least one shard".to_string(),
            ));
        }
        if shards > domain_size {
            return Err(StorageError::InvalidPartition(format!(
                "{shards} range shards over a domain of {domain_size} codes"
            )));
        }
        // Balanced widths (floor + remainder) keep every shard non-empty
        // and the bounds strictly increasing for any shards <= domain_size.
        let base = domain_size / shards;
        let remainder = domain_size % shards;
        let mut bounds = Vec::with_capacity(shards);
        let mut covered = 0usize;
        for i in 0..shards {
            covered += base + usize::from(i < remainder);
            bounds.push((covered - 1) as u32);
        }
        Ok(Partitioning::Range { attr, bounds })
    }

    /// Number of shards this partitioning produces.
    pub fn num_shards(&self) -> usize {
        match self {
            Partitioning::Hash { shards, .. } => *shards,
            Partitioning::Range { bounds, .. } => bounds.len(),
        }
    }

    fn validate(&self, schema: &Schema) -> Result<()> {
        match self {
            Partitioning::Hash { shards, attr } => {
                if *shards == 0 {
                    return Err(StorageError::InvalidPartition(
                        "hash partitioning needs at least one shard".to_string(),
                    ));
                }
                if let Some(a) = attr {
                    schema.attr(*a)?;
                }
            }
            Partitioning::Range { attr, bounds } => {
                let size = schema.domain_size(*attr)?;
                if bounds.is_empty() {
                    return Err(StorageError::InvalidPartition(
                        "range partitioning needs at least one bound".to_string(),
                    ));
                }
                if bounds.windows(2).any(|w| w[0] >= w[1]) {
                    return Err(StorageError::InvalidPartition(
                        "range bounds must be strictly increasing".to_string(),
                    ));
                }
                let last = *bounds.last().expect("non-empty bounds") as usize;
                if last + 1 < size {
                    return Err(StorageError::InvalidPartition(format!(
                        "last range bound {last} does not cover domain of {size} codes"
                    )));
                }
            }
        }
        Ok(())
    }
}

/// FNV-1a over a sequence of dense codes, finished with an avalanche mix so
/// low-entropy inputs (small dense codes) still spread across buckets.
fn fnv1a_mix(codes: impl IntoIterator<Item = u32>) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for c in codes {
        for byte in c.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    // SplitMix64-style finalizer.
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

/// A single dictionary-encoded column.
#[derive(Debug, Clone, Default)]
pub struct Column {
    codes: Vec<u32>,
}

impl Column {
    fn with_capacity(cap: usize) -> Self {
        Column {
            codes: Vec::with_capacity(cap),
        }
    }

    /// The dense codes of this column, one per row.
    #[inline]
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }
}

/// A columnar relation instance: the ordered bag of tuples `I`.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    columns: Vec<Column>,
    /// Ingest epoch: bumped once per accepted *batch* append (never per
    /// row), so downstream consumers (the streaming-ingest layer, caches
    /// keyed on table versions) can detect that the bag of tuples changed
    /// without diffing columns. Single-row `push_row` calls do not bump it —
    /// they are the bulk-load path, not the ingest path.
    epoch: u64,
}

impl Table {
    /// Creates an empty table for `schema`.
    pub fn new(schema: Schema) -> Self {
        let columns = (0..schema.arity()).map(|_| Column::default()).collect();
        Table {
            schema,
            columns,
            epoch: 0,
        }
    }

    /// Creates an empty table with row capacity pre-reserved.
    pub fn with_capacity(schema: Schema, rows: usize) -> Self {
        let columns = (0..schema.arity())
            .map(|_| Column::with_capacity(rows))
            .collect();
        Table {
            schema,
            columns,
            epoch: 0,
        }
    }

    /// The table's ingest epoch: how many batch appends ([`Table::append`]
    /// and [`Table::append_rows`]) it has accepted since construction.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows (`n`, the instance cardinality).
    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Appends one tuple, validating arity and domain membership.
    pub fn push_row(&mut self, row: &[u32]) -> Result<()> {
        self.schema.validate_row(row)?;
        for (col, &code) in self.columns.iter_mut().zip(row) {
            col.codes.push(code);
        }
        Ok(())
    }

    /// Appends one tuple without validation.
    ///
    /// Callers (bulk generators) must guarantee `row` is schema-valid; debug
    /// builds still assert it.
    pub fn push_row_unchecked(&mut self, row: &[u32]) {
        debug_assert!(self.schema.validate_row(row).is_ok());
        for (col, &code) in self.columns.iter_mut().zip(row) {
            col.codes.push(code);
        }
    }

    /// Builds a table from an iterator of rows.
    pub fn from_rows<I>(schema: Schema, rows: I) -> Result<Self>
    where
        I: IntoIterator<Item = Vec<u32>>,
    {
        let mut t = Table::new(schema);
        for row in rows {
            t.push_row(&row)?;
        }
        Ok(t)
    }

    /// The column for attribute `id`.
    pub fn column(&self, id: AttrId) -> Result<&Column> {
        self.columns
            .get(id.0)
            .ok_or(StorageError::AttrIdOutOfRange {
                id: id.0,
                arity: self.schema.arity(),
            })
    }

    /// Materializes row `r` (mostly for tests and small examples).
    pub fn row(&self, r: usize) -> Option<Vec<u32>> {
        if r >= self.num_rows() {
            return None;
        }
        Some(self.columns.iter().map(|c| c.codes[r]).collect())
    }

    /// Appends all rows of `other`. Schemas must match exactly (same
    /// arity, names, domain sizes, and kinds); a mismatch is rejected with
    /// a diagnostic [`StorageError::SchemaMismatch`] before any column is
    /// touched, so a failed append never leaves columns misaligned. This is
    /// the re-assembly path for horizontal shards (see [`Table::partition`]).
    pub fn append(&mut self, other: &Table) -> Result<()> {
        if let Some(reason) = schema_divergence(&self.schema, &other.schema) {
            return Err(StorageError::SchemaMismatch { reason });
        }
        for (dst, src) in self.columns.iter_mut().zip(&other.columns) {
            dst.codes.extend_from_slice(&src.codes);
        }
        self.epoch += 1;
        Ok(())
    }

    /// Appends a batch of rows all-or-nothing: every row is validated
    /// against the schema *before* any column is touched, so a failed batch
    /// never leaves columns misaligned or partially ingested. On success
    /// the ingest epoch is bumped once (per batch, not per row) and the new
    /// epoch is returned. This is the streaming-ingest staging path.
    pub fn append_rows(&mut self, rows: &[Vec<u32>]) -> Result<u64> {
        for row in rows {
            self.schema.validate_row(row)?;
        }
        for row in rows {
            for (col, &code) in self.columns.iter_mut().zip(row) {
                col.codes.push(code);
            }
        }
        self.epoch += 1;
        Ok(self.epoch)
    }

    /// Splits the table into horizontal shards according to `partitioning`.
    ///
    /// Every row lands in exactly one shard (shards re-assembled with
    /// [`Table::append`] hold the same bag of tuples), all shards share this
    /// table's schema, and the assignment is a deterministic function of row
    /// contents. Shards may be empty.
    pub fn partition(&self, partitioning: &Partitioning) -> Result<Vec<Table>> {
        partitioning.validate(&self.schema)?;
        let k = partitioning.num_shards();
        let n = self.num_rows();
        let mut shards: Vec<Table> = (0..k).map(|_| Table::new(self.schema.clone())).collect();

        // One pass computing every row's shard, then one column-major copy
        // per shard (cache-friendly for wide tables).
        let mut assignment: Vec<u32> = Vec::with_capacity(n);
        match partitioning {
            Partitioning::Hash { shards: _, attr } => match attr {
                Some(a) => {
                    let codes = self.column(*a)?.codes();
                    assignment.extend(codes.iter().map(|&c| (fnv1a_mix([c]) % k as u64) as u32));
                }
                None => {
                    for r in 0..n {
                        let h = fnv1a_mix(self.columns.iter().map(|c| c.codes[r]));
                        assignment.push((h % k as u64) as u32);
                    }
                }
            },
            Partitioning::Range { attr, bounds } => {
                let codes = self.column(*attr)?.codes();
                assignment.extend(
                    codes
                        .iter()
                        .map(|&c| bounds.partition_point(|&b| b < c) as u32),
                );
            }
        }

        let mut counts = vec![0usize; k];
        for &s in &assignment {
            counts[s as usize] += 1;
        }
        for (shard, &cap) in shards.iter_mut().zip(&counts) {
            for col in &mut shard.columns {
                col.codes.reserve(cap);
            }
        }
        for (ci, col) in self.columns.iter().enumerate() {
            for (r, &s) in assignment.iter().enumerate() {
                shards[s as usize].columns[ci].codes.push(col.codes[r]);
            }
        }
        Ok(shards)
    }

    /// Approximate in-memory footprint in bytes (code payload only).
    pub fn payload_bytes(&self) -> usize {
        self.columns
            .iter()
            .map(|c| c.codes.len() * std::mem::size_of::<u32>())
            .sum()
    }
}

/// Describes the first way two schemas diverge, or `None` when they match.
fn schema_divergence(a: &Schema, b: &Schema) -> Option<String> {
    if a.arity() != b.arity() {
        return Some(format!("arity {} vs {}", a.arity(), b.arity()));
    }
    for (i, (x, y)) in a.attributes().iter().zip(b.attributes()).enumerate() {
        if x.name() != y.name() {
            return Some(format!(
                "attribute {i} named {:?} vs {:?}",
                x.name(),
                y.name()
            ));
        }
        if x.domain_size() != y.domain_size() {
            return Some(format!(
                "attribute {i} ({:?}) domain size {} vs {}",
                x.name(),
                x.domain_size(),
                y.domain_size()
            ));
        }
        if x.kind() != y.kind() {
            return Some(format!(
                "attribute {i} ({:?}) kind {:?} vs {:?}",
                x.name(),
                x.kind(),
                y.kind()
            ));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::categorical("a", 2).unwrap(),
            Attribute::categorical("b", 3).unwrap(),
        ])
    }

    #[test]
    fn push_and_read_back() {
        let mut t = Table::new(schema());
        t.push_row(&[0, 2]).unwrap();
        t.push_row(&[1, 1]).unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.row(0), Some(vec![0, 2]));
        assert_eq!(t.row(1), Some(vec![1, 1]));
        assert_eq!(t.row(2), None);
        assert_eq!(t.column(AttrId(1)).unwrap().codes(), &[2, 1]);
    }

    #[test]
    fn invalid_rows_rejected() {
        let mut t = Table::new(schema());
        assert!(t.push_row(&[0]).is_err());
        assert!(t.push_row(&[0, 3]).is_err());
        assert_eq!(t.num_rows(), 0);
    }

    #[test]
    fn from_rows_roundtrip() {
        let rows = vec![vec![0, 0], vec![1, 2], vec![0, 1]];
        let t = Table::from_rows(schema(), rows.clone()).unwrap();
        assert_eq!(t.num_rows(), 3);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(t.row(i).as_ref(), Some(row));
        }
    }

    #[test]
    fn append_requires_same_schema() {
        let mut a = Table::from_rows(schema(), vec![vec![0, 0]]).unwrap();
        let b = Table::from_rows(schema(), vec![vec![1, 1]]).unwrap();
        a.append(&b).unwrap();
        assert_eq!(a.num_rows(), 2);

        let other = Table::new(Schema::new(vec![Attribute::categorical("x", 2).unwrap()]));
        assert!(matches!(
            a.append(&other),
            Err(StorageError::SchemaMismatch { .. })
        ));
        // The rejection happens before any column is touched.
        assert_eq!(a.num_rows(), 2);
    }

    #[test]
    fn append_mismatch_reasons_are_diagnostic() {
        let base = Table::from_rows(schema(), vec![vec![0, 0]]).unwrap();

        // Same arity, different domain size on attribute 1.
        let wider = Schema::new(vec![
            Attribute::categorical("a", 2).unwrap(),
            Attribute::categorical("b", 4).unwrap(),
        ]);
        let mut t = base.clone();
        let Err(StorageError::SchemaMismatch { reason }) = t.append(&Table::new(wider)) else {
            panic!("domain-size mismatch must be rejected");
        };
        assert!(reason.contains("domain size 3 vs 4"), "{reason}");

        // Same shape, different name.
        let renamed = Schema::new(vec![
            Attribute::categorical("a", 2).unwrap(),
            Attribute::categorical("z", 3).unwrap(),
        ]);
        let Err(StorageError::SchemaMismatch { reason }) = t.append(&Table::new(renamed)) else {
            panic!("name mismatch must be rejected");
        };
        assert!(reason.contains("\"b\" vs \"z\""), "{reason}");
    }

    #[test]
    fn append_rows_is_atomic_and_bumps_epoch() {
        let mut t = Table::from_rows(schema(), vec![vec![0, 0]]).unwrap();
        assert_eq!(t.epoch(), 0);

        let epoch = t.append_rows(&[vec![1, 1], vec![0, 2]]).unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(t.epoch(), 1);
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.row(2), Some(vec![0, 2]));

        // A batch with one bad row is rejected wholesale: no rows land, no
        // epoch bump, columns stay aligned.
        assert!(t.append_rows(&[vec![1, 0], vec![0, 99]]).is_err());
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.epoch(), 1);

        // Table-level append also counts as one batch.
        let b = Table::from_rows(schema(), vec![vec![1, 2]]).unwrap();
        t.append(&b).unwrap();
        assert_eq!(t.epoch(), 2);
    }

    fn partition_fixture() -> Table {
        let schema = Schema::new(vec![
            Attribute::categorical("a", 8).unwrap(),
            Attribute::categorical("b", 3).unwrap(),
        ]);
        let mut t = Table::new(schema);
        for i in 0..200u32 {
            t.push_row(&[(i * 7 + 3) % 8, i % 3]).unwrap();
        }
        t
    }

    /// Re-assembled shards hold the same bag of tuples as the original.
    fn assert_partition_covers(t: &Table, shards: &[Table]) {
        use crate::exec::GroupCounts;
        let total: usize = shards.iter().map(Table::num_rows).sum();
        assert_eq!(total, t.num_rows());
        let mut rebuilt = Table::new(t.schema().clone());
        for s in shards {
            assert_eq!(s.schema(), t.schema());
            rebuilt.append(s).unwrap();
        }
        let attrs: Vec<AttrId> = t.schema().attr_ids().collect();
        let original = GroupCounts::compute(t, &attrs).unwrap();
        let merged = GroupCounts::compute(&rebuilt, &attrs).unwrap();
        for (values, count) in original.iter() {
            assert_eq!(merged.get(&values), count, "cell {values:?}");
        }
        assert_eq!(original.num_groups(), merged.num_groups());
    }

    #[test]
    fn hash_partition_covers_and_is_deterministic() {
        let t = partition_fixture();
        for k in [1usize, 2, 4, 8] {
            let shards = t.partition(&Partitioning::hash(k)).unwrap();
            assert_eq!(shards.len(), k);
            assert_partition_covers(&t, &shards);
            let again = t.partition(&Partitioning::hash(k)).unwrap();
            for (s1, s2) in shards.iter().zip(&again) {
                for a in t.schema().attr_ids() {
                    assert_eq!(s1.column(a).unwrap().codes(), s2.column(a).unwrap().codes());
                }
            }
        }
    }

    #[test]
    fn hash_on_attr_colocates_values() {
        let t = partition_fixture();
        let shards = t.partition(&Partitioning::hash_on(AttrId(0), 4)).unwrap();
        assert_partition_covers(&t, &shards);
        // Every attribute-0 value lives in exactly one shard.
        for v in 0..8u32 {
            let holders = shards
                .iter()
                .filter(|s| s.column(AttrId(0)).unwrap().codes().contains(&v))
                .count();
            assert!(holders <= 1, "value {v} split across {holders} shards");
        }
    }

    #[test]
    fn range_partition_respects_bounds() {
        let t = partition_fixture();
        let p = Partitioning::range(AttrId(0), 4, 8).unwrap();
        let Partitioning::Range { ref bounds, .. } = p else {
            unreachable!()
        };
        assert_eq!(bounds, &[1, 3, 5, 7]);
        let shards = t.partition(&p).unwrap();
        assert_partition_covers(&t, &shards);
        let mut lo = 0u32;
        for (shard, &hi) in shards.iter().zip(bounds) {
            for &c in shard.column(AttrId(0)).unwrap().codes() {
                assert!((lo..=hi).contains(&c), "code {c} outside [{lo}, {hi}]");
            }
            lo = hi + 1;
        }
    }

    #[test]
    fn range_partition_handles_uneven_widths() {
        // ceil-width rounding must not exhaust the domain early: 4 shards
        // over 6 codes needs widths [2, 2, 1, 1], not [2, 2, 2, <empty>].
        let p = Partitioning::range(AttrId(0), 4, 6).unwrap();
        let Partitioning::Range { ref bounds, .. } = p else {
            unreachable!()
        };
        assert_eq!(bounds, &[1, 3, 4, 5]);
        let p = Partitioning::range(AttrId(0), 7, 10).unwrap();
        let Partitioning::Range { ref bounds, .. } = p else {
            unreachable!()
        };
        assert_eq!(bounds, &[1, 3, 5, 6, 7, 8, 9]);
        // Every constructed range partitioning passes its own validation.
        let schema = Schema::new(vec![Attribute::categorical("a", 11).unwrap()]);
        let t = Table::new(schema);
        for shards in 1..=11usize {
            let p = Partitioning::range(AttrId(0), shards, 11).unwrap();
            let parts = t.partition(&p).unwrap();
            assert_eq!(parts.len(), shards, "{shards} shards over 11 codes");
        }
    }

    #[test]
    fn invalid_partitionings_rejected() {
        let t = partition_fixture();
        assert!(matches!(
            t.partition(&Partitioning::hash(0)),
            Err(StorageError::InvalidPartition(_))
        ));
        assert!(t.partition(&Partitioning::hash_on(AttrId(9), 2)).is_err());
        assert!(Partitioning::range(AttrId(0), 0, 8).is_err());
        assert!(Partitioning::range(AttrId(0), 9, 8).is_err());
        // Bounds not covering the domain.
        let bad = Partitioning::Range {
            attr: AttrId(0),
            bounds: vec![1, 3],
        };
        assert!(matches!(
            t.partition(&bad),
            Err(StorageError::InvalidPartition(_))
        ));
        // Non-increasing bounds.
        let bad = Partitioning::Range {
            attr: AttrId(0),
            bounds: vec![3, 3, 7],
        };
        assert!(t.partition(&bad).is_err());
    }
}
