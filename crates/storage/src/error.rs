//! Error types for the storage layer.

use std::fmt;

/// Errors produced by schema construction, table loading, and query execution.
#[derive(Debug, Clone, PartialEq)]
pub enum StorageError {
    /// An attribute name was looked up that does not exist in the schema.
    UnknownAttribute(String),
    /// An attribute id was out of range for the schema.
    AttrIdOutOfRange { id: usize, arity: usize },
    /// A row had the wrong number of values for the schema.
    ArityMismatch { expected: usize, got: usize },
    /// A dictionary code exceeded the attribute's declared domain size.
    CodeOutOfDomain {
        attr: String,
        code: u32,
        domain_size: usize,
    },
    /// A domain (or bin count) of size zero was declared.
    EmptyDomain(String),
    /// A range predicate or bin specification had `lo > hi`.
    InvalidRange { lo: u32, hi: u32 },
    /// A binner was configured with a non-positive width interval.
    InvalidBinSpec { lo: f64, hi: f64, bins: usize },
    /// Two schemas that must match (e.g. for appends or shard re-assembly)
    /// differ; `reason` names the first divergence found.
    SchemaMismatch { reason: String },
    /// A partitioning specification was invalid for the table it was
    /// applied to (zero shards, out-of-schema attribute, bad bounds).
    InvalidPartition(String),
    /// Textual query input (predicate or statement) could not be parsed.
    Syntax(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownAttribute(name) => {
                write!(f, "unknown attribute: {name:?}")
            }
            StorageError::AttrIdOutOfRange { id, arity } => {
                write!(
                    f,
                    "attribute id {id} out of range for schema of arity {arity}"
                )
            }
            StorageError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "row arity mismatch: expected {expected} values, got {got}"
                )
            }
            StorageError::CodeOutOfDomain {
                attr,
                code,
                domain_size,
            } => {
                write!(
                    f,
                    "code {code} out of domain for attribute {attr:?} (domain size {domain_size})"
                )
            }
            StorageError::EmptyDomain(name) => {
                write!(f, "attribute {name:?} declared with an empty domain")
            }
            StorageError::InvalidRange { lo, hi } => {
                write!(f, "invalid range: lo {lo} > hi {hi}")
            }
            StorageError::InvalidBinSpec { lo, hi, bins } => {
                write!(f, "invalid bin spec: [{lo}, {hi}] with {bins} bins")
            }
            StorageError::SchemaMismatch { reason } => {
                write!(f, "schema mismatch: {reason}")
            }
            StorageError::InvalidPartition(reason) => {
                write!(f, "invalid partitioning: {reason}")
            }
            StorageError::Syntax(reason) => {
                write!(f, "syntax error: {reason}")
            }
        }
    }
}

impl std::error::Error for StorageError {}

/// Convenience alias used throughout the storage crate.
pub type Result<T> = std::result::Result<T, StorageError>;
