//! Exact query execution over columnar tables.
//!
//! This is the ground-truth engine for every experiment: counting queries
//! (`|σ_π(I)|`), grouped counts for workload selection, and weighted sums
//! for `SUM`/`AVG` baselines. Execution is clause-at-a-time over a selection
//! vector, the classic columnar strategy.

use crate::error::Result;
use crate::predicate::Predicate;
use crate::schema::AttrId;
use crate::table::Table;
use std::collections::HashMap;

/// Exact answer to the counting query `SELECT COUNT(*) WHERE pred`.
pub fn count(table: &Table, pred: &Predicate) -> Result<u64> {
    pred.validate(table.schema())?;
    let clauses: Vec<_> = pred.clauses().iter().filter(|(_, p)| !p.is_all()).collect();
    if clauses.is_empty() {
        return Ok(table.num_rows() as u64);
    }

    // First clause: scan the full column, producing the initial selection.
    let (first_attr, first_pred) = clauses[0];
    let first_codes = table.column(*first_attr)?.codes();
    let mut selection: Vec<u32> = Vec::new();
    for (i, &v) in first_codes.iter().enumerate() {
        if first_pred.matches(v) {
            selection.push(i as u32);
        }
    }

    // Remaining clauses: refine the selection vector.
    for (attr, p) in &clauses[1..] {
        if selection.is_empty() {
            break;
        }
        let codes = table.column(*attr)?.codes();
        selection.retain(|&i| p.matches(codes[i as usize]));
    }
    Ok(selection.len() as u64)
}

/// Exact answer to `SELECT SUM(weight(attr)) WHERE pred`, where `weights[v]`
/// is the contribution of a row whose `attr` code is `v` (e.g. bucket
/// midpoints for a binned numeric attribute).
pub fn sum_by(table: &Table, pred: &Predicate, attr: AttrId, weights: &[f64]) -> Result<f64> {
    pred.validate(table.schema())?;
    let target = table.column(attr)?.codes();
    let mut total = 0.0;
    'rows: for (i, &v) in target.iter().enumerate() {
        for (a, p) in pred.clauses() {
            if !p.matches(table.column(*a)?.codes()[i]) {
                continue 'rows;
            }
        }
        total += weights.get(v as usize).copied().unwrap_or(0.0);
    }
    Ok(total)
}

/// Grouped exact counts over a set of attributes, with keys packed into `u64`
/// by mixed-radix encoding (domains are small, so this always fits for up to
/// ~8 realistic attributes).
#[derive(Debug, Clone)]
pub struct GroupCounts {
    attrs: Vec<AttrId>,
    radices: Vec<u64>,
    counts: HashMap<u64, u64>,
}

impl GroupCounts {
    /// Computes `SELECT attrs, COUNT(*) GROUP BY attrs` in one scan.
    pub fn compute(table: &Table, attrs: &[AttrId]) -> Result<Self> {
        let mut radices = Vec::with_capacity(attrs.len());
        let mut space = 1u128;
        for &a in attrs {
            let n = table.schema().domain_size(a)? as u64;
            radices.push(n);
            space = space.saturating_mul(n as u128);
        }
        assert!(
            space <= u64::MAX as u128,
            "group-by key space exceeds u64; group fewer attributes"
        );

        let columns: Vec<&[u32]> = attrs
            .iter()
            .map(|&a| table.column(a).map(|c| c.codes()))
            .collect::<Result<_>>()?;

        let mut counts: HashMap<u64, u64> = HashMap::new();
        for i in 0..table.num_rows() {
            let mut key = 0u64;
            for (col, &radix) in columns.iter().zip(&radices) {
                key = key * radix + col[i] as u64;
            }
            *counts.entry(key).or_insert(0) += 1;
        }
        Ok(GroupCounts {
            attrs: attrs.to_vec(),
            radices,
            counts,
        })
    }

    /// The grouped attributes, in key order.
    pub fn attrs(&self) -> &[AttrId] {
        &self.attrs
    }

    /// Number of non-empty groups.
    pub fn num_groups(&self) -> usize {
        self.counts.len()
    }

    /// The count for a specific value combination (0 when absent).
    pub fn get(&self, values: &[u32]) -> u64 {
        assert_eq!(values.len(), self.attrs.len());
        let mut key = 0u64;
        for (&v, &radix) in values.iter().zip(&self.radices) {
            key = key * radix + v as u64;
        }
        self.counts.get(&key).copied().unwrap_or(0)
    }

    /// Iterates `(values, count)` over non-empty groups in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Vec<u32>, u64)> + '_ {
        self.counts.iter().map(move |(&key, &cnt)| {
            let mut vals = vec![0u32; self.radices.len()];
            let mut k = key;
            for idx in (0..self.radices.len()).rev() {
                vals[idx] = (k % self.radices[idx]) as u32;
                k /= self.radices[idx];
            }
            (vals, cnt)
        })
    }

    /// Groups sorted by descending count (ties broken by value), i.e. the
    /// paper's "heavy hitters first" ordering.
    pub fn sorted_desc(&self) -> Vec<(Vec<u32>, u64)> {
        let mut v: Vec<(Vec<u32>, u64)> = self.iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }

    /// All value combinations in the cross product of the grouped domains
    /// that have a zero count ("nonexistent values"). Only call for group-by
    /// spaces small enough to enumerate.
    pub fn zero_combinations(&self, domain_sizes: &[usize]) -> Vec<Vec<u32>> {
        assert_eq!(domain_sizes.len(), self.attrs.len());
        let total: u128 = domain_sizes.iter().map(|&d| d as u128).product();
        assert!(total <= 50_000_000, "zero-combination space too large");
        let mut result = Vec::new();
        let mut values = vec![0u32; domain_sizes.len()];
        loop {
            if self.get(&values) == 0 {
                result.push(values.clone());
            }
            // Mixed-radix increment.
            let mut idx = domain_sizes.len();
            loop {
                if idx == 0 {
                    return result;
                }
                idx -= 1;
                values[idx] += 1;
                if (values[idx] as usize) < domain_sizes[idx] {
                    break;
                }
                values[idx] = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Schema};

    fn table() -> Table {
        let schema = Schema::new(vec![
            Attribute::categorical("a", 3).unwrap(),
            Attribute::categorical("b", 4).unwrap(),
        ]);
        Table::from_rows(
            schema,
            vec![
                vec![0, 0],
                vec![0, 1],
                vec![1, 1],
                vec![1, 1],
                vec![2, 3],
                vec![0, 0],
            ],
        )
        .unwrap()
    }

    #[test]
    fn count_matches_brute_force() {
        let t = table();
        assert_eq!(count(&t, &Predicate::all()).unwrap(), 6);
        assert_eq!(count(&t, &Predicate::new().eq(AttrId(0), 0)).unwrap(), 3);
        assert_eq!(
            count(&t, &Predicate::new().eq(AttrId(0), 1).eq(AttrId(1), 1)).unwrap(),
            2
        );
        assert_eq!(
            count(&t, &Predicate::new().between(AttrId(1), 1, 3)).unwrap(),
            4
        );
        assert_eq!(
            count(&t, &Predicate::new().eq(AttrId(0), 2).eq(AttrId(1), 0)).unwrap(),
            0
        );
    }

    #[test]
    fn count_validates_predicate() {
        let t = table();
        assert!(count(&t, &Predicate::new().eq(AttrId(0), 99)).is_err());
    }

    #[test]
    fn sum_by_weights() {
        let t = table();
        // weight(b) = b as f64
        let w = [0.0, 1.0, 2.0, 3.0];
        let total = sum_by(&t, &Predicate::all(), AttrId(1), &w).unwrap();
        assert_eq!(total, 0.0 + 1.0 + 1.0 + 1.0 + 3.0 + 0.0);
        let only_a0 = sum_by(&t, &Predicate::new().eq(AttrId(0), 0), AttrId(1), &w).unwrap();
        assert_eq!(only_a0, 1.0);
    }

    #[test]
    fn group_counts_roundtrip() {
        let t = table();
        let g = GroupCounts::compute(&t, &[AttrId(0), AttrId(1)]).unwrap();
        assert_eq!(g.get(&[0, 0]), 2);
        assert_eq!(g.get(&[1, 1]), 2);
        assert_eq!(g.get(&[2, 3]), 1);
        assert_eq!(g.get(&[2, 0]), 0);
        assert_eq!(g.num_groups(), 4);
        let total: u64 = g.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn sorted_desc_orders_heavy_first() {
        let t = table();
        let g = GroupCounts::compute(&t, &[AttrId(0), AttrId(1)]).unwrap();
        let sorted = g.sorted_desc();
        assert_eq!(sorted[0].1, 2);
        assert_eq!(sorted[1].1, 2);
        assert!(sorted.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn zero_combinations_found() {
        let t = table();
        let g = GroupCounts::compute(&t, &[AttrId(0), AttrId(1)]).unwrap();
        let zeros = g.zero_combinations(&[3, 4]);
        // 12 combinations, 4 non-empty.
        assert_eq!(zeros.len(), 8);
        assert!(zeros.contains(&vec![2, 0]));
        assert!(!zeros.contains(&vec![0, 0]));
    }

    #[test]
    fn group_counts_match_per_group_count_queries() {
        let t = table();
        let g = GroupCounts::compute(&t, &[AttrId(0)]).unwrap();
        for v in 0..3u32 {
            let c = count(&t, &Predicate::new().eq(AttrId(0), v)).unwrap();
            assert_eq!(g.get(&[v]), c);
        }
    }
}
