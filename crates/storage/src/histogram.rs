//! One- and two-dimensional frequency histograms.
//!
//! The MaxEnt summary is parameterized by observed statistics: the complete
//! set of 1D value counts per attribute, plus selected 2D counts. These
//! histograms compute those observed values exactly in a single scan.

use crate::error::Result;
use crate::schema::AttrId;
use crate::table::Table;

/// Exact per-value counts for one attribute: `counts[v] = |σ_{A=v}(I)|`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram1D {
    attr: AttrId,
    counts: Vec<u64>,
}

impl Histogram1D {
    /// Scans `table` and counts every value of `attr`.
    pub fn compute(table: &Table, attr: AttrId) -> Result<Self> {
        let n = table.schema().domain_size(attr)?;
        let mut counts = vec![0u64; n];
        for &v in table.column(attr)?.codes() {
            counts[v as usize] += 1;
        }
        Ok(Histogram1D { attr, counts })
    }

    /// The attribute this histogram describes.
    pub fn attr(&self) -> AttrId {
        self.attr
    }

    /// Per-value counts, indexed by code.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Count of one value.
    pub fn get(&self, v: u32) -> u64 {
        self.counts.get(v as usize).copied().unwrap_or(0)
    }

    /// Total row count (`n`).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Number of values with non-zero count.
    pub fn support(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }
}

/// Exact contingency table for an attribute pair, row-major over the first
/// attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram2D {
    attr_x: AttrId,
    attr_y: AttrId,
    nx: usize,
    ny: usize,
    counts: Vec<u64>,
}

impl Histogram2D {
    /// Scans `table` and counts every `(x, y)` combination.
    pub fn compute(table: &Table, attr_x: AttrId, attr_y: AttrId) -> Result<Self> {
        let nx = table.schema().domain_size(attr_x)?;
        let ny = table.schema().domain_size(attr_y)?;
        let xs = table.column(attr_x)?.codes();
        let ys = table.column(attr_y)?.codes();
        let mut counts = vec![0u64; nx * ny];
        for (&x, &y) in xs.iter().zip(ys) {
            counts[x as usize * ny + y as usize] += 1;
        }
        Ok(Histogram2D {
            attr_x,
            attr_y,
            nx,
            ny,
            counts,
        })
    }

    /// The (x, y) attribute pair.
    pub fn attrs(&self) -> (AttrId, AttrId) {
        (self.attr_x, self.attr_y)
    }

    /// Domain sizes `(N_x, N_y)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Count of one cell.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> u64 {
        self.counts[x as usize * self.ny + y as usize]
    }

    /// Count of the rectangle `[x_lo, x_hi] × [y_lo, y_hi]` (inclusive).
    pub fn rectangle_count(&self, x_lo: u32, x_hi: u32, y_lo: u32, y_hi: u32) -> u64 {
        let mut total = 0;
        for x in x_lo..=x_hi.min(self.nx as u32 - 1) {
            let row = &self.counts[x as usize * self.ny..(x as usize + 1) * self.ny];
            for y in y_lo..=y_hi.min(self.ny as u32 - 1) {
                total += row[y as usize];
            }
        }
        total
    }

    /// Marginal counts over the first attribute.
    pub fn marginal_x(&self) -> Vec<u64> {
        self.counts
            .chunks_exact(self.ny)
            .map(|row| row.iter().sum())
            .collect()
    }

    /// Marginal counts over the second attribute.
    pub fn marginal_y(&self) -> Vec<u64> {
        let mut m = vec![0u64; self.ny];
        for row in self.counts.chunks_exact(self.ny) {
            for (slot, &c) in m.iter_mut().zip(row) {
                *slot += c;
            }
        }
        m
    }

    /// Total row count.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Iterates non-empty cells as `(x, y, count)`.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (u32, u32, u64)> + '_ {
        self.counts.iter().enumerate().filter_map(move |(i, &c)| {
            if c == 0 {
                None
            } else {
                Some(((i / self.ny) as u32, (i % self.ny) as u32, c))
            }
        })
    }

    /// Number of non-empty cells (the paper reports e.g. "1,334 of 5,022
    /// possible 2D statistics exist in Flights").
    pub fn support(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Schema};

    fn table() -> Table {
        let schema = Schema::new(vec![
            Attribute::categorical("a", 3).unwrap(),
            Attribute::categorical("b", 2).unwrap(),
        ]);
        Table::from_rows(
            schema,
            vec![vec![0, 0], vec![0, 1], vec![1, 1], vec![1, 1], vec![2, 0]],
        )
        .unwrap()
    }

    #[test]
    fn histogram_1d() {
        let t = table();
        let h = Histogram1D::compute(&t, AttrId(0)).unwrap();
        assert_eq!(h.counts(), &[2, 2, 1]);
        assert_eq!(h.total(), 5);
        assert_eq!(h.support(), 3);
        assert_eq!(h.get(1), 2);
        assert_eq!(h.get(99), 0);
    }

    #[test]
    fn histogram_2d_cells_and_marginals() {
        let t = table();
        let h = Histogram2D::compute(&t, AttrId(0), AttrId(1)).unwrap();
        assert_eq!(h.get(0, 0), 1);
        assert_eq!(h.get(1, 1), 2);
        assert_eq!(h.get(2, 1), 0);
        assert_eq!(h.marginal_x(), vec![2, 2, 1]);
        assert_eq!(h.marginal_y(), vec![2, 3]);
        assert_eq!(h.total(), 5);
        assert_eq!(h.support(), 4);
    }

    #[test]
    fn rectangle_counts() {
        let t = table();
        let h = Histogram2D::compute(&t, AttrId(0), AttrId(1)).unwrap();
        assert_eq!(h.rectangle_count(0, 2, 0, 1), 5);
        assert_eq!(h.rectangle_count(0, 1, 1, 1), 3);
        assert_eq!(h.rectangle_count(2, 2, 0, 0), 1);
        // Clamping beyond the domain is safe.
        assert_eq!(h.rectangle_count(0, 99, 0, 99), 5);
    }

    #[test]
    fn marginals_match_1d_histograms() {
        let t = table();
        let h2 = Histogram2D::compute(&t, AttrId(0), AttrId(1)).unwrap();
        let hx = Histogram1D::compute(&t, AttrId(0)).unwrap();
        let hy = Histogram1D::compute(&t, AttrId(1)).unwrap();
        assert_eq!(h2.marginal_x(), hx.counts());
        assert_eq!(h2.marginal_y(), hy.counts());
    }
}
