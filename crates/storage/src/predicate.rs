//! Conjunctive predicates over dense-coded attributes.
//!
//! The paper's queries (Eq. 16) are conjunctions `ρ_1 ∧ ... ∧ ρ_m` with one
//! predicate per attribute (`true` for ignored attributes). [`AttrPredicate`]
//! is one `ρ_i`; [`Predicate`] is the conjunction. Both the exact executor
//! and the MaxEnt query translator consume this representation.

use crate::error::{Result, StorageError};
use crate::schema::{AttrId, Schema};

/// A predicate over one attribute's dense codes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AttrPredicate {
    /// Always true (the attribute is ignored by the query).
    All,
    /// Always false — the explicit empty predicate (`A IN ()`, or a
    /// comparison below the domain's first code). Distinguished from an
    /// empty [`AttrPredicate::Set`] so an unsatisfiable clause is visible
    /// rather than a silent degenerate set.
    Never,
    /// `A = v`.
    Point(u32),
    /// `A ∈ [lo, hi]`, inclusive on both ends.
    Range { lo: u32, hi: u32 },
    /// `A ∈ {vs}`; values are kept sorted and deduplicated, never empty
    /// (the empty set normalizes to [`AttrPredicate::Never`]).
    Set(Vec<u32>),
}

impl AttrPredicate {
    /// Builds a range predicate, validating `lo <= hi`.
    pub fn range(lo: u32, hi: u32) -> Result<Self> {
        if lo > hi {
            return Err(StorageError::InvalidRange { lo, hi });
        }
        Ok(AttrPredicate::Range { lo, hi })
    }

    /// Builds a set predicate from arbitrary values (sorted, deduped). The
    /// empty value list yields the explicit always-false predicate.
    pub fn set(mut vs: Vec<u32>) -> Self {
        vs.sort_unstable();
        vs.dedup();
        if vs.is_empty() {
            AttrPredicate::Never
        } else {
            AttrPredicate::Set(vs)
        }
    }

    /// Whether code `v` satisfies this predicate.
    #[inline]
    pub fn matches(&self, v: u32) -> bool {
        match self {
            AttrPredicate::All => true,
            AttrPredicate::Never => false,
            AttrPredicate::Point(p) => v == *p,
            AttrPredicate::Range { lo, hi } => *lo <= v && v <= *hi,
            AttrPredicate::Set(vs) => vs.binary_search(&v).is_ok(),
        }
    }

    /// Whether this predicate is trivially true.
    pub fn is_all(&self) -> bool {
        matches!(self, AttrPredicate::All)
    }

    /// Whether this predicate is trivially false.
    pub fn is_never(&self) -> bool {
        matches!(self, AttrPredicate::Never)
    }

    /// Number of codes in `0..domain_size` satisfying the predicate.
    pub fn selectivity(&self, domain_size: usize) -> usize {
        match self {
            AttrPredicate::All => domain_size,
            AttrPredicate::Never => 0,
            AttrPredicate::Point(p) => usize::from((*p as usize) < domain_size),
            AttrPredicate::Range { lo, hi } => {
                let hi = (*hi as usize).min(domain_size.saturating_sub(1));
                let lo = *lo as usize;
                if lo > hi {
                    0
                } else {
                    hi - lo + 1
                }
            }
            AttrPredicate::Set(vs) => vs.iter().filter(|&&v| (v as usize) < domain_size).count(),
        }
    }

    /// Iterates the codes within `0..domain_size` satisfying the predicate.
    pub fn matching_codes(&self, domain_size: usize) -> Vec<u32> {
        match self {
            AttrPredicate::All => (0..domain_size as u32).collect(),
            AttrPredicate::Never => vec![],
            AttrPredicate::Point(p) => {
                if (*p as usize) < domain_size {
                    vec![*p]
                } else {
                    vec![]
                }
            }
            AttrPredicate::Range { lo, hi } => {
                let hi = (*hi).min(domain_size.saturating_sub(1) as u32);
                if *lo > hi {
                    vec![]
                } else {
                    (*lo..=hi).collect()
                }
            }
            AttrPredicate::Set(vs) => vs
                .iter()
                .copied()
                .filter(|&v| (v as usize) < domain_size)
                .collect(),
        }
    }
}

/// A conjunction of per-attribute predicates; attributes not mentioned are
/// unconstrained.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Predicate {
    clauses: Vec<(AttrId, AttrPredicate)>,
}

impl Predicate {
    /// The always-true predicate.
    pub fn all() -> Self {
        Predicate::default()
    }

    /// Starts building a predicate.
    pub fn new() -> Self {
        Predicate::default()
    }

    /// Adds an equality clause `attr = v`.
    pub fn eq(mut self, attr: AttrId, v: u32) -> Self {
        self.clauses.push((attr, AttrPredicate::Point(v)));
        self
    }

    /// Adds an inclusive range clause `attr ∈ [lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`; use [`AttrPredicate::range`] + [`Predicate::with`]
    /// for fallible construction.
    pub fn between(mut self, attr: AttrId, lo: u32, hi: u32) -> Self {
        self.clauses
            .push((attr, AttrPredicate::range(lo, hi).expect("lo <= hi")));
        self
    }

    /// Adds a set-membership clause.
    pub fn in_set(mut self, attr: AttrId, vs: Vec<u32>) -> Self {
        self.clauses.push((attr, AttrPredicate::set(vs)));
        self
    }

    /// Adds an arbitrary clause.
    pub fn with(mut self, attr: AttrId, p: AttrPredicate) -> Self {
        self.clauses.push((attr, p));
        self
    }

    /// The clauses in insertion order (trivial `All` clauses included).
    pub fn clauses(&self) -> &[(AttrId, AttrPredicate)] {
        &self.clauses
    }

    /// The attributes constrained by a non-trivial clause.
    pub fn constrained_attrs(&self) -> Vec<AttrId> {
        let mut v: Vec<AttrId> = self
            .clauses
            .iter()
            .filter(|(_, p)| !p.is_all())
            .map(|(a, _)| *a)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// The effective predicate for `attr`: the conjunction of all clauses on
    /// it, or `All` when unconstrained. Multiple clauses on one attribute are
    /// intersected by materializing matching code sets.
    pub fn attr_predicate(&self, attr: AttrId, domain_size: usize) -> AttrPredicate {
        let mut relevant: Vec<&AttrPredicate> = self
            .clauses
            .iter()
            .filter(|(a, p)| *a == attr && !p.is_all())
            .map(|(_, p)| p)
            .collect();
        match relevant.len() {
            0 => AttrPredicate::All,
            1 => relevant.pop().unwrap().clone(),
            _ => {
                // An empty intersection normalizes to the explicit
                // always-false predicate via `set`.
                let codes: Vec<u32> = (0..domain_size as u32)
                    .filter(|&v| relevant.iter().all(|p| p.matches(v)))
                    .collect();
                AttrPredicate::set(codes)
            }
        }
    }

    /// Whether `row` satisfies every clause.
    pub fn matches_row(&self, row: &[u32]) -> bool {
        self.clauses
            .iter()
            .all(|(a, p)| row.get(a.0).is_some_and(|&v| p.matches(v)))
    }

    /// Validates that all referenced attributes exist and all ranges fall
    /// within their domains.
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        for (attr, p) in &self.clauses {
            let n = schema.domain_size(*attr)?;
            let ok = match p {
                AttrPredicate::All | AttrPredicate::Never => true,
                AttrPredicate::Point(v) => (*v as usize) < n,
                AttrPredicate::Range { lo, hi } => *lo <= *hi && (*hi as usize) < n,
                AttrPredicate::Set(vs) => vs.iter().all(|&v| (v as usize) < n),
            };
            if !ok {
                return Err(StorageError::CodeOutOfDomain {
                    attr: schema.attr(*attr)?.name().to_string(),
                    code: match p {
                        AttrPredicate::Point(v) => *v,
                        AttrPredicate::Range { hi, .. } => *hi,
                        AttrPredicate::Set(vs) => vs.last().copied().unwrap_or(0),
                        AttrPredicate::All | AttrPredicate::Never => 0,
                    },
                    domain_size: n,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Schema};

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::categorical("a", 4).unwrap(),
            Attribute::categorical("b", 6).unwrap(),
        ])
    }

    #[test]
    fn attr_predicate_matching() {
        assert!(AttrPredicate::All.matches(99));
        assert!(AttrPredicate::Point(3).matches(3));
        assert!(!AttrPredicate::Point(3).matches(4));
        let r = AttrPredicate::range(2, 5).unwrap();
        assert!(r.matches(2) && r.matches(5) && !r.matches(6) && !r.matches(1));
        let s = AttrPredicate::set(vec![5, 1, 5, 3]);
        assert!(s.matches(1) && s.matches(3) && s.matches(5) && !s.matches(2));
    }

    #[test]
    fn invalid_range_rejected() {
        assert!(AttrPredicate::range(5, 2).is_err());
    }

    #[test]
    fn empty_set_normalizes_to_never() {
        let p = AttrPredicate::set(vec![]);
        assert_eq!(p, AttrPredicate::Never);
        assert!(p.is_never());
        assert!(!p.matches(0));
        assert_eq!(p.selectivity(10), 0);
        assert!(p.matching_codes(10).is_empty());
    }

    #[test]
    fn never_clause_rejects_every_row_and_validates() {
        let s = schema();
        let p = Predicate::new().in_set(AttrId(0), vec![]).eq(AttrId(1), 2);
        assert!(p.clauses()[0].1.is_never());
        assert!(!p.matches_row(&[0, 2]));
        assert!(!p.matches_row(&[3, 2]));
        assert!(p.validate(&s).is_ok());
        assert_eq!(p.attr_predicate(AttrId(0), 4), AttrPredicate::Never);
    }

    #[test]
    fn disjoint_intersection_normalizes_to_never() {
        let p = Predicate::new()
            .between(AttrId(1), 0, 1)
            .between(AttrId(1), 3, 5);
        assert_eq!(p.attr_predicate(AttrId(1), 6), AttrPredicate::Never);
    }

    #[test]
    fn selectivity_counts_matching_codes() {
        assert_eq!(AttrPredicate::All.selectivity(10), 10);
        assert_eq!(AttrPredicate::Point(3).selectivity(10), 1);
        assert_eq!(AttrPredicate::Point(12).selectivity(10), 0);
        assert_eq!(AttrPredicate::range(2, 5).unwrap().selectivity(10), 4);
        assert_eq!(AttrPredicate::range(8, 20).unwrap().selectivity(10), 2);
        assert_eq!(AttrPredicate::set(vec![1, 2, 99]).selectivity(10), 2);
    }

    #[test]
    fn matching_codes_agree_with_matches() {
        let preds = [
            AttrPredicate::All,
            AttrPredicate::Point(2),
            AttrPredicate::range(1, 3).unwrap(),
            AttrPredicate::set(vec![0, 4]),
        ];
        for p in preds {
            let codes = p.matching_codes(5);
            for v in 0..5u32 {
                assert_eq!(codes.contains(&v), p.matches(v), "{p:?} at {v}");
            }
        }
    }

    #[test]
    fn conjunction_matches_rows() {
        let p = Predicate::new().eq(AttrId(0), 1).between(AttrId(1), 2, 4);
        assert!(p.matches_row(&[1, 3]));
        assert!(!p.matches_row(&[0, 3]));
        assert!(!p.matches_row(&[1, 5]));
        assert_eq!(p.constrained_attrs(), vec![AttrId(0), AttrId(1)]);
    }

    #[test]
    fn repeated_clauses_intersect() {
        let p = Predicate::new()
            .between(AttrId(1), 0, 3)
            .between(AttrId(1), 2, 5);
        let eff = p.attr_predicate(AttrId(1), 6);
        assert_eq!(eff, AttrPredicate::Set(vec![2, 3]));
        assert_eq!(p.attr_predicate(AttrId(0), 4), AttrPredicate::All);
    }

    #[test]
    fn validate_against_schema() {
        let s = schema();
        assert!(Predicate::new().eq(AttrId(0), 3).validate(&s).is_ok());
        assert!(Predicate::new().eq(AttrId(0), 4).validate(&s).is_err());
        assert!(Predicate::new().eq(AttrId(7), 0).validate(&s).is_err());
        assert!(Predicate::new()
            .between(AttrId(1), 4, 9)
            .validate(&s)
            .is_err());
    }
}
