//! # entropydb-storage
//!
//! The storage substrate for EntropyDB-rs: an in-memory, dictionary-encoded
//! column store playing the role PostgreSQL plays in the paper
//! ("Probabilistic Database Summarization for Interactive Data Exploration",
//! VLDB 2017). It holds the relation instance `I`, answers exact counting
//! queries (the ground truth of every experiment), and computes the
//! 1D/2D statistics the MaxEnt model is fitted to.
//!
//! Main types:
//! * [`Schema`] / [`Attribute`] — relations over discrete ordered domains.
//! * [`Binner`] — equi-width bucketization of continuous attributes.
//! * [`Table`] — columnar instance (an ordered bag of tuples).
//! * [`Predicate`] — conjunctive per-attribute predicates (paper Eq. 16).
//! * [`exec`] — exact `COUNT`/`SUM`/group-by execution.
//! * [`Histogram1D`] / [`Histogram2D`] — observed statistics.
//! * [`correlation`] — chi-squared / Cramér's V pair ranking (Sec. 4.3).
//! * [`csv`] — delimited-file ingestion with schema inference.
//! * [`parser`] — a small textual predicate language for interactive use.

pub mod binning;
pub mod correlation;
pub mod csv;
pub mod dictionary;
pub mod error;
pub mod exec;
pub mod histogram;
pub mod parser;
pub mod predicate;
pub mod schema;
pub mod table;

pub use binning::Binner;
pub use csv::{CsvDataset, CsvOptions};
pub use dictionary::Dictionary;
pub use error::{Result, StorageError};
pub use exec::GroupCounts;
pub use histogram::{Histogram1D, Histogram2D};
pub use parser::{parse_predicate, parse_statement, Resolver, Statement};
pub use predicate::{AttrPredicate, Predicate};
pub use schema::{AttrId, AttrKind, Attribute, Schema};
pub use table::{Column, Partitioning, Table};
