//! Property tests for the storage substrate: binning, predicates, exact
//! execution, histograms, and correlation measures.

use entropydb_storage::exec::{count, GroupCounts};
use entropydb_storage::{
    AttrId, AttrPredicate, Attribute, Binner, Histogram1D, Histogram2D, Predicate, Schema, Table,
};
use proptest::prelude::*;

fn arb_table() -> impl Strategy<Value = Table> {
    (2usize..6, 2usize..6, 0usize..60).prop_flat_map(|(nx, ny, rows)| {
        prop::collection::vec((0u32..nx as u32, 0u32..ny as u32), rows).prop_map(move |pairs| {
            let schema = Schema::new(vec![
                Attribute::categorical("x", nx).unwrap(),
                Attribute::categorical("y", ny).unwrap(),
            ]);
            let mut t = Table::new(schema);
            for (x, y) in pairs {
                t.push_row(&[x, y]).unwrap();
            }
            t
        })
    })
}

fn arb_attr_predicate(domain: u32) -> impl Strategy<Value = AttrPredicate> {
    prop_oneof![
        Just(AttrPredicate::All),
        (0..domain).prop_map(AttrPredicate::Point),
        (0..domain, 0..domain).prop_map(|(a, b)| AttrPredicate::Range {
            lo: a.min(b),
            hi: a.max(b)
        }),
        prop::collection::vec(0..domain, 0..4).prop_map(AttrPredicate::set),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Binning is monotone and maps into range.
    #[test]
    fn binner_monotone(lo in -1e3f64..1e3, width in 1e-3f64..1e3, bins in 1usize..100,
                       a in -2e3f64..2e3, b in -2e3f64..2e3) {
        let binner = Binner::new(lo, lo + width, bins).unwrap();
        let (x, y) = (a.min(b), a.max(b));
        prop_assert!(binner.bin(x) <= binner.bin(y));
        prop_assert!((binner.bin(y) as usize) < bins);
    }

    /// bin_range covers exactly the bins of the values inside the range.
    #[test]
    fn bin_range_consistent(bins in 1usize..50, a in 0f64..100.0, b in 0f64..100.0) {
        let binner = Binner::new(0.0, 100.0, bins).unwrap();
        let (vlo, vhi) = (a.min(b), a.max(b));
        let (blo, bhi) = binner.bin_range(vlo, vhi).unwrap();
        prop_assert_eq!(blo, binner.bin(vlo));
        prop_assert_eq!(bhi, binner.bin(vhi));
        prop_assert!(blo <= bhi);
    }

    /// Exact count equals the brute-force row filter for any predicate.
    #[test]
    fn count_matches_brute_force(
        (table, px, py) in arb_table().prop_flat_map(|t| {
            let nx = t.schema().domain_size(AttrId(0)).unwrap() as u32;
            let ny = t.schema().domain_size(AttrId(1)).unwrap() as u32;
            (Just(t), arb_attr_predicate(nx), arb_attr_predicate(ny))
        })
    ) {
        let pred = Predicate::new()
            .with(AttrId(0), px.clone())
            .with(AttrId(1), py.clone());
        let fast = count(&table, &pred).unwrap();
        let mut brute = 0u64;
        for i in 0..table.num_rows() {
            let row = table.row(i).unwrap();
            if px.matches(row[0]) && py.matches(row[1]) {
                brute += 1;
            }
        }
        prop_assert_eq!(fast, brute);
    }

    /// Group counts partition the table: totals match, and each group's
    /// count equals the point-predicate count.
    #[test]
    fn group_counts_partition(table in arb_table()) {
        let g = GroupCounts::compute(&table, &[AttrId(0), AttrId(1)]).unwrap();
        let total: u64 = g.iter().map(|(_, c)| c).sum();
        prop_assert_eq!(total, table.num_rows() as u64);
        for (values, c) in g.iter() {
            let pred = Predicate::new().eq(AttrId(0), values[0]).eq(AttrId(1), values[1]);
            prop_assert_eq!(count(&table, &pred).unwrap(), c);
        }
    }

    /// 1D histograms equal 2D marginals and sum to n.
    #[test]
    fn histogram_consistency(table in arb_table()) {
        let h2 = Histogram2D::compute(&table, AttrId(0), AttrId(1)).unwrap();
        let hx = Histogram1D::compute(&table, AttrId(0)).unwrap();
        let hy = Histogram1D::compute(&table, AttrId(1)).unwrap();
        prop_assert_eq!(h2.marginal_x(), hx.counts().to_vec());
        prop_assert_eq!(h2.marginal_y(), hy.counts().to_vec());
        prop_assert_eq!(hx.total(), table.num_rows() as u64);
        // Rectangle count over the whole domain is n.
        let (nx, ny) = h2.dims();
        prop_assert_eq!(
            h2.rectangle_count(0, nx as u32 - 1, 0, ny as u32 - 1),
            table.num_rows() as u64
        );
    }

    /// Cramér's V stays in [0, 1].
    #[test]
    fn cramers_v_bounded(table in arb_table()) {
        let h = Histogram2D::compute(&table, AttrId(0), AttrId(1)).unwrap();
        let v = entropydb_storage::correlation::cramers_v(&h);
        prop_assert!((0.0..=1.0).contains(&v));
    }

    /// Zero combinations plus non-empty groups tile the full cross product.
    #[test]
    fn zeros_and_groups_tile_the_space(table in arb_table()) {
        let sizes = vec![
            table.schema().domain_size(AttrId(0)).unwrap(),
            table.schema().domain_size(AttrId(1)).unwrap(),
        ];
        let g = GroupCounts::compute(&table, &[AttrId(0), AttrId(1)]).unwrap();
        let zeros = g.zero_combinations(&sizes);
        prop_assert_eq!(zeros.len() + g.num_groups(), sizes[0] * sizes[1]);
        for z in &zeros {
            prop_assert_eq!(g.get(z), 0);
        }
    }
}
