//! Property-style tests for the storage substrate: binning, predicates,
//! exact execution, histograms, and correlation measures.
//!
//! crates.io is unreachable from the build environment, so instead of
//! `proptest` these run each property over many SplitMix64-seeded random
//! configurations — deterministic, shrink-free property testing.

use entropydb_storage::exec::{count, GroupCounts};
use entropydb_storage::{
    AttrId, AttrPredicate, Attribute, Binner, Histogram1D, Histogram2D, Predicate, Schema, Table,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_table(g: &mut StdRng) -> Table {
    let nx = g.gen_range(2..6);
    let ny = g.gen_range(2..6);
    let rows = g.gen_range(0..60);
    let schema = Schema::new(vec![
        Attribute::categorical("x", nx).unwrap(),
        Attribute::categorical("y", ny).unwrap(),
    ]);
    let mut t = Table::new(schema);
    for _ in 0..rows {
        let x = g.gen_range(0..nx as u32);
        let y = g.gen_range(0..ny as u32);
        t.push_row(&[x, y]).unwrap();
    }
    t
}

fn random_attr_predicate(g: &mut StdRng, domain: u32) -> AttrPredicate {
    match g.gen_range(0..4) {
        0 => AttrPredicate::All,
        1 => AttrPredicate::Point(g.gen_range(0..domain)),
        2 => {
            let a = g.gen_range(0..domain);
            let b = g.gen_range(0..domain);
            AttrPredicate::Range {
                lo: a.min(b),
                hi: a.max(b),
            }
        }
        _ => {
            let k = g.gen_range(0..4);
            AttrPredicate::set((0..k).map(|_| g.gen_range(0..domain)).collect::<Vec<_>>())
        }
    }
}

/// Binning is monotone and maps into range.
#[test]
fn binner_monotone() {
    let mut g = StdRng::seed_from_u64(11);
    for _ in 0..192 {
        let lo = g.gen_range(-1e3..1e3);
        let width = g.gen_range(1e-3..1e3);
        let bins = g.gen_range(1..100);
        let binner = Binner::new(lo, lo + width, bins).unwrap();
        let a = g.gen_range(-2e3..2e3);
        let b = g.gen_range(-2e3..2e3);
        let (x, y) = (a.min(b), a.max(b));
        assert!(binner.bin(x) <= binner.bin(y));
        assert!((binner.bin(y) as usize) < bins);
    }
}

/// bin_range covers exactly the bins of the values inside the range.
#[test]
fn bin_range_consistent() {
    let mut g = StdRng::seed_from_u64(12);
    for _ in 0..192 {
        let bins = g.gen_range(1..50);
        let binner = Binner::new(0.0, 100.0, bins).unwrap();
        let a = g.gen_range(0.0..100.0);
        let b = g.gen_range(0.0..100.0);
        let (vlo, vhi) = (a.min(b), a.max(b));
        let (blo, bhi) = binner.bin_range(vlo, vhi).unwrap();
        assert_eq!(blo, binner.bin(vlo));
        assert_eq!(bhi, binner.bin(vhi));
        assert!(blo <= bhi);
    }
}

/// Exact count equals the brute-force row filter for any predicate.
#[test]
fn count_matches_brute_force() {
    let mut g = StdRng::seed_from_u64(13);
    for _ in 0..192 {
        let table = random_table(&mut g);
        let nx = table.schema().domain_size(AttrId(0)).unwrap() as u32;
        let ny = table.schema().domain_size(AttrId(1)).unwrap() as u32;
        let px = random_attr_predicate(&mut g, nx);
        let py = random_attr_predicate(&mut g, ny);
        let pred = Predicate::new()
            .with(AttrId(0), px.clone())
            .with(AttrId(1), py.clone());
        let fast = count(&table, &pred).unwrap();
        let mut brute = 0u64;
        for i in 0..table.num_rows() {
            let row = table.row(i).unwrap();
            if px.matches(row[0]) && py.matches(row[1]) {
                brute += 1;
            }
        }
        assert_eq!(fast, brute);
    }
}

/// Group counts partition the table: totals match, and each group's count
/// equals the point-predicate count.
#[test]
fn group_counts_partition() {
    let mut g = StdRng::seed_from_u64(14);
    for _ in 0..96 {
        let table = random_table(&mut g);
        let gc = GroupCounts::compute(&table, &[AttrId(0), AttrId(1)]).unwrap();
        let total: u64 = gc.iter().map(|(_, c)| c).sum();
        assert_eq!(total, table.num_rows() as u64);
        for (values, c) in gc.iter() {
            let pred = Predicate::new()
                .eq(AttrId(0), values[0])
                .eq(AttrId(1), values[1]);
            assert_eq!(count(&table, &pred).unwrap(), c);
        }
    }
}

/// 1D histograms equal 2D marginals and sum to n.
#[test]
fn histogram_consistency() {
    let mut g = StdRng::seed_from_u64(15);
    for _ in 0..96 {
        let table = random_table(&mut g);
        let h2 = Histogram2D::compute(&table, AttrId(0), AttrId(1)).unwrap();
        let hx = Histogram1D::compute(&table, AttrId(0)).unwrap();
        let hy = Histogram1D::compute(&table, AttrId(1)).unwrap();
        assert_eq!(h2.marginal_x(), hx.counts().to_vec());
        assert_eq!(h2.marginal_y(), hy.counts().to_vec());
        assert_eq!(hx.total(), table.num_rows() as u64);
        let (nx, ny) = h2.dims();
        assert_eq!(
            h2.rectangle_count(0, nx as u32 - 1, 0, ny as u32 - 1),
            table.num_rows() as u64
        );
    }
}

/// Cramér's V stays in [0, 1].
#[test]
fn cramers_v_bounded() {
    let mut g = StdRng::seed_from_u64(16);
    for _ in 0..96 {
        let table = random_table(&mut g);
        let h = Histogram2D::compute(&table, AttrId(0), AttrId(1)).unwrap();
        let v = entropydb_storage::correlation::cramers_v(&h);
        assert!((0.0..=1.0).contains(&v));
    }
}

/// Zero combinations plus non-empty groups tile the full cross product.
#[test]
fn zeros_and_groups_tile_the_space() {
    let mut g = StdRng::seed_from_u64(17);
    for _ in 0..96 {
        let table = random_table(&mut g);
        let sizes = vec![
            table.schema().domain_size(AttrId(0)).unwrap(),
            table.schema().domain_size(AttrId(1)).unwrap(),
        ];
        let gc = GroupCounts::compute(&table, &[AttrId(0), AttrId(1)]).unwrap();
        let zeros = gc.zero_combinations(&sizes);
        assert_eq!(zeros.len() + gc.num_groups(), sizes[0] * sizes[1]);
        for z in &zeros {
            assert_eq!(gc.get(z), 0);
        }
    }
}
