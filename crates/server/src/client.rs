//! A small synchronous client for the line protocol.

use crate::protocol::decode_schema;
use entropydb_core::error::{ModelError, Result as ModelResult};
use entropydb_core::plan::{parse_request, QueryRequest, QueryResponse};
use entropydb_storage::Schema;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Errors a client call can produce: transport failures or query/protocol
/// errors (including errors the server reported on the wire error channel,
/// surfaced as [`ModelError::Remote`]).
#[derive(Debug)]
pub enum ClientError {
    /// The TCP transport failed (connect, read, write, or unexpected EOF).
    Io(io::Error),
    /// A query, parse, or protocol error.
    Model(ModelError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Model(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Model(e) => Some(e),
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ModelError> for ClientError {
    fn from(e: ModelError) -> Self {
        ClientError::Model(e)
    }
}

/// Convenience alias for client call results.
pub type ClientResult<T> = std::result::Result<T, ClientError>;

/// A connected session against an EntropyDB query server.
///
/// The client speaks the query IR directly ([`Client::execute`] /
/// [`Client::execute_batch`]) or textual statements ([`Client::query`],
/// parsed against the served schema — values of binned attributes are raw
/// numbers, values of categorical attributes are dense codes).
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    schema: Option<Schema>,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
            schema: None,
        })
    }

    fn send_line(&mut self, line: &str) -> ClientResult<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        Ok(())
    }

    fn read_line(&mut self) -> ClientResult<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        Ok(line.trim_end_matches(['\n', '\r']).to_string())
    }

    /// Health check.
    pub fn ping(&mut self) -> ClientResult<()> {
        self.send_line("ping")?;
        let reply = self.read_line()?;
        if reply == "pong" {
            Ok(())
        } else {
            Err(ClientError::Model(ModelError::Remote(format!(
                "unexpected ping reply {reply:?}"
            ))))
        }
    }

    /// The served summary's schema (fetched once, then cached).
    pub fn schema(&mut self) -> ClientResult<&Schema> {
        if self.schema.is_none() {
            self.send_line("schema")?;
            let header = self.read_line()?;
            // The borrow checker cannot see through `FnMut` captures of
            // `self`, so read via a local reader handle.
            let reader = &mut self.reader;
            let schema = decode_schema(&header, || {
                let mut line = String::new();
                if reader
                    .read_line(&mut line)
                    .map_err(|e| ModelError::Remote(e.to_string()))?
                    == 0
                {
                    return Err(ModelError::Remote(
                        "connection closed mid-schema".to_string(),
                    ));
                }
                Ok(line.trim_end_matches(['\n', '\r']).to_string())
            })?;
            self.schema = Some(schema);
        }
        Ok(self.schema.as_ref().expect("schema cached"))
    }

    /// Executes one IR request remotely.
    pub fn execute(&mut self, request: &QueryRequest) -> ClientResult<QueryResponse> {
        self.send_line(&request.encode())?;
        let line = self.read_line()?;
        Ok(QueryResponse::decode(&line)?)
    }

    /// Executes a batch of IR requests as pipelined frames (split at the
    /// server's [`MAX_BATCH`](crate::MAX_BATCH) frame limit, so any batch
    /// size is accepted). The outer result is transport-level; each
    /// element is that request's outcome (server-side failures decode to
    /// [`ModelError::Remote`]).
    pub fn execute_batch(
        &mut self,
        requests: &[QueryRequest],
    ) -> ClientResult<Vec<ModelResult<QueryResponse>>> {
        let mut responses = Vec::with_capacity(requests.len());
        for chunk in requests.chunks(crate::protocol::MAX_BATCH) {
            let mut frame = format!("batch {}\n", chunk.len());
            for request in chunk {
                frame.push_str(&request.encode());
                frame.push('\n');
            }
            self.writer.write_all(frame.as_bytes())?;
            self.writer.flush()?;
            for _ in 0..chunk.len() {
                let line = self.read_line()?;
                responses.push(QueryResponse::decode(&line));
            }
        }
        Ok(responses)
    }

    /// Parses a textual statement against the served schema and executes
    /// it: `COUNT WHERE origin = 2`, `TOP 5 dest`, `SAMPLE 100 SEED 7`, ...
    pub fn query(&mut self, statement: &str) -> ClientResult<QueryResponse> {
        self.schema()?;
        let schema = self.schema.as_ref().expect("schema cached");
        let request = parse_request(statement, schema)?;
        self.execute(&request)
    }

    /// Ends the session politely (the server also handles abrupt drops).
    pub fn quit(mut self) {
        let _ = self.send_line("quit");
    }
}
