//! A small synchronous client for the line protocol.

use crate::protocol::{
    decode_append_outcome, decode_ingest_stats, decode_schema, encode_append, MAX_APPEND_ROWS,
};
use entropydb_core::engine::AppendOutcome;
use entropydb_core::error::{ModelError, RemoteDetail, Result as ModelResult};
use entropydb_core::metrics::{CacheStatsSnapshot, IngestStatsSnapshot, ServerStatsSnapshot};
use entropydb_core::plan::{parse_request, QueryRequest, QueryResponse};
use entropydb_core::probe::{ProbeRequest, ProbeResponse};
use entropydb_storage::Schema;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Socket deadlines a [`Client`] places on its connection. `None` disables
/// the corresponding deadline (block forever — the pre-deadline behavior).
///
/// The defaults keep an interactive client responsive against a wedged
/// server: a hung socket surfaces as a timed-out [`ClientError::Io`]
/// instead of stalling the REPL (or a gatherer) forever. Scatter/gather
/// deployments tighten these via the remote backend's failover
/// configuration.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// TCP connect deadline (default 5 s).
    pub connect_timeout: Option<Duration>,
    /// Per-read deadline on response lines (default 30 s).
    pub read_timeout: Option<Duration>,
    /// Per-write deadline on request lines (default 30 s).
    pub write_timeout: Option<Duration>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Some(Duration::from_secs(5)),
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
        }
    }
}

impl ClientConfig {
    /// No deadlines at all (block forever) — the pre-timeout behavior.
    pub fn blocking() -> Self {
        ClientConfig {
            connect_timeout: None,
            read_timeout: None,
            write_timeout: None,
        }
    }
}

/// Errors a client call can produce: transport failures or query/protocol
/// errors (including errors the server reported on the wire error channel,
/// surfaced as [`ModelError::Remote`]).
#[derive(Debug)]
pub enum ClientError {
    /// The TCP transport failed (connect, read, write, or unexpected EOF).
    Io(io::Error),
    /// A query, parse, or protocol error.
    Model(ModelError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Model(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Model(e) => Some(e),
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ModelError> for ClientError {
    fn from(e: ModelError) -> Self {
        ClientError::Model(e)
    }
}

/// Convenience alias for client call results.
pub type ClientResult<T> = std::result::Result<T, ClientError>;

/// A connected session against an EntropyDB query server.
///
/// The client speaks the query IR directly ([`Client::execute`] /
/// [`Client::execute_batch`]), textual statements ([`Client::query`],
/// parsed against the served schema — values of binned attributes are raw
/// numbers, values of categorical attributes are dense codes), or
/// mask-level shard probes ([`Client::probe`] /
/// [`Client::probe_pipelined`], the scatter/gather fan-out primitive).
///
/// Queries are read-only, so [`Client::execute`] and the probe calls
/// transparently reconnect and retry **once** when the transport breaks
/// mid-call (server restart, idle-connection reset) — a broken pipe
/// surfaces to the caller only if the retry fails too. The retry never
/// fires for a server-reported error line or a deadline expiry (see
/// [`ClientConfig`] for the socket deadlines applied by default).
#[derive(Debug)]
pub struct Client {
    addr: SocketAddr,
    config: ClientConfig,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    schema: Option<Schema>,
    served_n: Option<u64>,
}

/// Dials `addr` honoring the connect deadline and applies the read/write
/// deadlines to the accepted stream.
fn dial(addr: &SocketAddr, config: &ClientConfig) -> io::Result<TcpStream> {
    let stream = match config.connect_timeout {
        Some(t) => TcpStream::connect_timeout(addr, t)?,
        None => TcpStream::connect(addr)?,
    };
    stream.set_nodelay(true)?;
    stream.set_read_timeout(config.read_timeout)?;
    stream.set_write_timeout(config.write_timeout)?;
    Ok(stream)
}

/// Rows per `a1` wire line when [`Client::append`] splits a large batch.
/// Well under the server's [`MAX_APPEND_ROWS`] admission cap and the
/// [`MAX_LINE_BYTES`](crate::protocol::MAX_LINE_BYTES) line cap for any
/// realistic arity.
const APPEND_CHUNK_ROWS: usize = 4096;

/// A process-unique idempotency token for an append batch the caller did
/// not token themselves: wall-clock nanos + pid + a process-local
/// sequence number. Collisions across clients would need two processes
/// sharing a pid, nanosecond, and sequence number.
pub(crate) fn generate_append_token() -> String {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    format!("c{:x}-{nanos:x}-{seq:x}", std::process::id())
}

/// True when an I/O failure means the *transport* died (reset, broken
/// pipe, unexpected EOF) — the one class of failure where re-dialing and
/// re-sending a read-only request is safe and useful. Deadline expiries
/// (`TimedOut` / `WouldBlock` from socket timeouts) are deliberately *not*
/// retryable here: the server may still be executing the request, and
/// blind client-side re-sends would stack work onto a struggling node —
/// deadline handling belongs to the caller (a gatherer fails over to a
/// replica instead).
pub(crate) fn transport_is_retryable(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::NotConnected
    )
}

impl Client {
    /// Connects to a server with the default deadlines
    /// ([`ClientConfig::default`]).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        Client::connect_with(addr, ClientConfig::default())
    }

    /// Connects to a server with explicit socket deadlines.
    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> io::Result<Client> {
        let mut last_err = None;
        for candidate in addr.to_socket_addrs()? {
            match dial(&candidate, &config) {
                Ok(stream) => {
                    return Ok(Client {
                        addr: stream.peer_addr()?,
                        config,
                        reader: BufReader::new(stream.try_clone()?),
                        writer: stream,
                        schema: None,
                        served_n: None,
                    })
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
        }))
    }

    /// The server address this client dials (and re-dials on reconnect).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The socket deadlines this client applies to its connection.
    pub fn config(&self) -> &ClientConfig {
        &self.config
    }

    /// Drops the current connection and dials the server again (same
    /// deadlines). Cached schema/cardinality are kept: a reconnect targets
    /// the same serving address, which serves the same summary.
    pub fn reconnect(&mut self) -> io::Result<()> {
        let stream = dial(&self.addr, &self.config)?;
        self.reader = BufReader::new(stream.try_clone()?);
        self.writer = stream;
        Ok(())
    }

    fn send_line(&mut self, line: &str) -> ClientResult<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        Ok(())
    }

    fn read_line(&mut self) -> ClientResult<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        Ok(line.trim_end_matches(['\n', '\r']).to_string())
    }

    /// Health check.
    pub fn ping(&mut self) -> ClientResult<()> {
        self.send_line("ping")?;
        let reply = self.read_line()?;
        if reply == "pong" {
            Ok(())
        } else {
            Err(ClientError::Model(ModelError::Remote(
                RemoteDetail::message(format!("unexpected ping reply {reply:?}")),
            )))
        }
    }

    /// The served summary's schema (fetched once, then cached).
    pub fn schema(&mut self) -> ClientResult<&Schema> {
        if self.schema.is_none() {
            self.send_line("schema")?;
            let header = self.read_line()?;
            // The borrow checker cannot see through `FnMut` captures of
            // `self`, so read via a local reader handle.
            let reader = &mut self.reader;
            let (schema, n) = decode_schema(&header, || {
                let mut line = String::new();
                if reader
                    .read_line(&mut line)
                    .map_err(|e| ModelError::Remote(RemoteDetail::message(e.to_string())))?
                    == 0
                {
                    return Err(ModelError::Remote(RemoteDetail::message(
                        "connection closed mid-schema",
                    )));
                }
                Ok(line.trim_end_matches(['\n', '\r']).to_string())
            })?;
            self.schema = Some(schema);
            self.served_n = n;
        }
        Ok(self.schema.as_ref().expect("schema cached"))
    }

    /// The served summary's cardinality `n` from the schema handshake, or
    /// `None` when the server predates the handshake extension.
    pub fn served_n(&mut self) -> ClientResult<Option<u64>> {
        self.schema()?;
        Ok(self.served_n)
    }

    fn round_trip(&mut self, line: &str) -> ClientResult<String> {
        self.send_line(line)?;
        self.read_line()
    }

    /// One request line → one response line, reconnecting and retrying
    /// once on a *broken transport* (queries are read-only, so a retry
    /// never double-applies anything). The retry is restricted to genuine
    /// transport deaths ([`transport_is_retryable`]): a deterministic
    /// server error line (`r1 err ...`) is never re-sent, and a deadline
    /// expiry surfaces to the caller instead of re-queuing work on a node
    /// that may still be executing it.
    fn round_trip_with_retry(&mut self, line: &str) -> ClientResult<String> {
        match self.round_trip(line) {
            Err(ClientError::Io(e)) if transport_is_retryable(&e) => {
                self.reconnect()?;
                self.round_trip(line)
            }
            other => other,
        }
    }

    /// Fetches the server's gather-side probe-cache counters. `Ok(None)`
    /// means the server runs without a cache (a plain shard has nothing
    /// to cache; only gateways front a scatter/gather backend).
    pub fn cache_stats(&mut self) -> ClientResult<Option<CacheStatsSnapshot>> {
        let reply = self.round_trip_with_retry("stats")?;
        let rest = reply.strip_prefix("stats cache ").ok_or_else(|| {
            ClientError::Model(ModelError::Remote(RemoteDetail::message(format!(
                "unexpected stats reply {reply:?}"
            ))))
        })?;
        if rest.trim() == "none" {
            return Ok(None);
        }
        let mut fields = rest.split_ascii_whitespace().map(str::parse::<u64>);
        let mut next = || {
            fields
                .next()
                .and_then(std::result::Result::ok)
                .ok_or_else(|| {
                    ClientError::Model(ModelError::Remote(RemoteDetail::message(format!(
                        "malformed stats reply {reply:?}"
                    ))))
                })
        };
        Ok(Some(CacheStatsSnapshot {
            hits: next()?,
            misses: next()?,
            coalesced: next()?,
            evicted: next()?,
        }))
    }

    /// Fetches the server's serving-side operational counters (live
    /// sessions, accepted/shed connections, wire bytes, dispatch-queue
    /// depth) via the `stats server` session command.
    pub fn server_stats(&mut self) -> ClientResult<ServerStatsSnapshot> {
        let reply = self.round_trip_with_retry("stats server")?;
        crate::protocol::decode_server_stats(reply.trim()).map_err(ClientError::Model)
    }

    /// Executes one IR request remotely (reconnect-and-retry on a broken
    /// transport).
    pub fn execute(&mut self, request: &QueryRequest) -> ClientResult<QueryResponse> {
        let line = self.round_trip_with_retry(&request.encode())?;
        Ok(QueryResponse::decode(&line)?)
    }

    /// Executes one mask-level shard probe remotely (reconnect-and-retry
    /// on a broken transport).
    pub fn probe(&mut self, probe: &ProbeRequest) -> ClientResult<ProbeResponse> {
        let line = self.round_trip_with_retry(&probe.encode())?;
        Ok(ProbeResponse::decode(&line)?)
    }

    fn probe_pipelined_once(
        &mut self,
        probes: &[ProbeRequest],
    ) -> ClientResult<Vec<ProbeResponse>> {
        let mut frame = String::new();
        for probe in probes {
            frame.push_str(&probe.encode());
            frame.push('\n');
        }
        self.writer.write_all(frame.as_bytes())?;
        self.writer.flush()?;
        let mut responses = Vec::with_capacity(probes.len());
        for _ in probes {
            let line = self.read_line()?;
            responses.push(ProbeResponse::decode(&line)?);
        }
        Ok(responses)
    }

    /// Executes several shard probes as one pipelined write followed by
    /// in-order reads (one wire round trip for a whole fan-out step).
    /// Reconnects and retries the whole frame once on a *broken transport*
    /// (same restriction as [`Client::execute`]); a probe the *server*
    /// failed (its error channel) fails the call without a retry — probe
    /// errors are deterministic — and a deadline expiry surfaces to the
    /// caller for replica failover.
    pub fn probe_pipelined(&mut self, probes: &[ProbeRequest]) -> ClientResult<Vec<ProbeResponse>> {
        match self.probe_pipelined_once(probes) {
            Err(ClientError::Io(e)) if transport_is_retryable(&e) => {
                self.reconnect()?;
                self.probe_pipelined_once(probes)
            }
            other => other,
        }
    }

    /// Executes a batch of IR requests as pipelined frames (split at the
    /// server's [`MAX_BATCH`](crate::MAX_BATCH) frame limit, so any batch
    /// size is accepted). The outer result is transport-level; each
    /// element is that request's outcome (server-side failures decode to
    /// [`ModelError::Remote`]).
    pub fn execute_batch(
        &mut self,
        requests: &[QueryRequest],
    ) -> ClientResult<Vec<ModelResult<QueryResponse>>> {
        let mut responses = Vec::with_capacity(requests.len());
        for chunk in requests.chunks(crate::protocol::MAX_BATCH) {
            let mut frame = format!("batch {}\n", chunk.len());
            for request in chunk {
                frame.push_str(&request.encode());
                frame.push('\n');
            }
            self.writer.write_all(frame.as_bytes())?;
            self.writer.flush()?;
            for _ in 0..chunk.len() {
                let line = self.read_line()?;
                responses.push(QueryResponse::decode(&line));
            }
        }
        Ok(responses)
    }

    /// Appends coded rows to the served summary's live delta shard
    /// (`a1 ...` wire lines). Rows become *queryable* only once the
    /// server's background re-solve folds them into the published
    /// mixture — the returned [`AppendOutcome`] carries the staging gauge
    /// and current epoch so callers can watch the fold land (via
    /// [`Client::ingest_stats`]).
    ///
    /// `token` is the batch's idempotency token; when `None` the client
    /// generates one, so the built-in reconnect-and-retry after a broken
    /// transport can never double-ingest (an ambiguous first attempt and
    /// its retry carry the same token, and the server's token window
    /// absorbs the replay). Batches larger than one wire line allows are
    /// split into chunks tokened `<token>#<i>`, each idempotent on its
    /// own; chunk outcomes aggregate (accepted counts sum, `duplicate`
    /// means *every* chunk was a replay).
    ///
    /// Immutable backends (a server not started in live mode) answer the
    /// typed [`ModelError::Immutable`] error.
    pub fn append(
        &mut self,
        rows: &[Vec<u32>],
        token: Option<&str>,
    ) -> ClientResult<AppendOutcome> {
        let base = match token {
            Some(t) => t.to_string(),
            None => generate_append_token(),
        };
        const { assert!(APPEND_CHUNK_ROWS <= MAX_APPEND_ROWS) };
        let chunks: Vec<&[Vec<u32>]> = if rows.is_empty() {
            vec![&[][..]]
        } else {
            rows.chunks(APPEND_CHUNK_ROWS).collect()
        };
        let single = chunks.len() == 1;
        let mut total = AppendOutcome {
            accepted: 0,
            duplicate: true,
            staged: 0,
            epoch: 0,
        };
        for (i, chunk) in chunks.into_iter().enumerate() {
            let chunk_token = if single {
                base.clone()
            } else {
                format!("{base}#{i}")
            };
            let line = encode_append(Some(&chunk_token), chunk);
            let reply = self.round_trip_with_retry(line.trim_end())?;
            let outcome = if reply.starts_with("ai1") {
                decode_append_outcome(&reply)?
            } else {
                // Anything else is the query error channel (`r1 err ...`,
                // `r1 busy ...`) or a protocol violation.
                return Err(match QueryResponse::decode(&reply) {
                    Err(e) => ClientError::Model(e),
                    Ok(_) => ClientError::Model(ModelError::Remote(RemoteDetail::message(
                        format!("unexpected append reply {reply:?}"),
                    ))),
                });
            };
            total.accepted += outcome.accepted;
            total.duplicate &= outcome.duplicate;
            total.staged = outcome.staged;
            total.epoch = outcome.epoch;
        }
        Ok(total)
    }

    /// Fetches the server's streaming-ingest counters (`stats ingest`).
    /// `Ok(None)` means the served summary has no live delta shard (an
    /// immutable backend).
    pub fn ingest_stats(&mut self) -> ClientResult<Option<IngestStatsSnapshot>> {
        let reply = self.round_trip_with_retry("stats ingest")?;
        decode_ingest_stats(reply.trim()).map_err(ClientError::Model)
    }

    /// Parses a textual statement against the served schema and executes
    /// it: `COUNT WHERE origin = 2`, `TOP 5 dest`, `SAMPLE 100 SEED 7`, ...
    pub fn query(&mut self, statement: &str) -> ClientResult<QueryResponse> {
        self.schema()?;
        let schema = self.schema.as_ref().expect("schema cached");
        let request = parse_request(statement, schema)?;
        self.execute(&request)
    }

    /// Ends the session politely (the server also handles abrupt drops).
    pub fn quit(mut self) {
        let _ = self.send_line("quit");
    }
}
