//! The TCP server front door: configuration, the public `serve*` entry
//! points, and the two interchangeable cores behind them.
//!
//! * The **event-driven core** (`reactor.rs`, Linux): an in-tree epoll
//!   reactor multiplexing thousands of connections over O(cores)
//!   threads, with pipelined sessions, admission control, and
//!   flush-then-close load shedding. [`serve`] and [`serve_with`] use it
//!   by default on Linux.
//! * The **thread-per-connection core** (this file): one blocking session
//!   thread per client. Retained as the portability fallback and as the
//!   measured baseline for `benches/server.rs`; reachable explicitly via
//!   [`serve_threaded`].
//!
//! Both cores speak the identical line protocol, honor the same
//! [`ServerConfig`] semantics (idle-timeout reaping, `max_sessions` busy
//! shedding), and maintain the same [`ServerCounters`] observability
//! surface (`stats server` line, [`ServerHandle::stats`]).

use crate::protocol::{
    decode_append, encode_append_outcome, encode_ingest_stats, encode_schema, encode_server_stats,
    MAX_BATCH, MAX_LINE_BYTES, MAX_SAMPLE_ROWS,
};
use entropydb_core::engine::{QueryEngine, SummaryBackend};
use entropydb_core::error::{ModelError, RemoteDetail, Result};
use entropydb_core::metrics::{ServerCounters, ServerStatsSnapshot};
use entropydb_core::plan::{QueryRequest, QueryResponse};
use entropydb_core::probe::{ProbeRequest, ProbeResponse};
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

/// Serving-policy knobs of one server instance.
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// Idle deadline on a session's request reads. A client that stays
    /// silent longer than this has its session closed cleanly (the thread
    /// exits and deregisters), so a silent or vanished client cannot pin a
    /// session thread for the life of the process. `None` (the default)
    /// keeps the historical block-forever behavior.
    pub idle_timeout: Option<Duration>,
    /// Session-capacity cap. A connection accepted while this many
    /// sessions are already live is answered with one typed `busy` line
    /// ([`ModelError::Busy`] client-side) and closed, instead of admitting
    /// unbounded concurrent sessions. `None` (the default) disables the
    /// cap.
    pub max_sessions: Option<usize>,
}

impl ServerConfig {
    /// Fluent validated constructor (see [`ServerConfigBuilder`]).
    pub fn builder() -> ServerConfigBuilder {
        ServerConfigBuilder::default()
    }

    /// Checks the invariants [`ServerConfigBuilder::build`] enforces: a
    /// configured cap of zero is a misconfiguration (it would reject every
    /// session / close every connection instantly) — disabling a knob is
    /// spelled `None`.
    pub fn validate(&self) -> entropydb_core::error::Result<()> {
        if self.max_sessions == Some(0) {
            return Err(ModelError::InvalidConfig(
                "server max_sessions must be at least 1 when set (None disables the cap)"
                    .to_string(),
            ));
        }
        if self.idle_timeout == Some(Duration::ZERO) {
            return Err(ModelError::InvalidConfig(
                "server idle_timeout must be positive when set (None disables the deadline)"
                    .to_string(),
            ));
        }
        Ok(())
    }
}

/// Builder for [`ServerConfig`]; `build()` rejects zero caps.
#[derive(Debug, Clone, Default)]
pub struct ServerConfigBuilder {
    config: ServerConfig,
}

impl ServerConfigBuilder {
    /// Sets the session idle deadline.
    pub fn idle_timeout(mut self, timeout: Duration) -> Self {
        self.config.idle_timeout = Some(timeout);
        self
    }

    /// Sets the live-session cap.
    pub fn max_sessions(mut self, cap: usize) -> Self {
        self.config.max_sessions = Some(cap);
        self
    }

    /// Validates and returns the config.
    pub fn build(self) -> entropydb_core::error::Result<ServerConfig> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// Tuning knobs of the event-driven core (see [`serve_tuned`]). Separate
/// from [`ServerConfig`] so the serving-policy surface — and every
/// exhaustive `ServerConfig` literal in existing code — stays unchanged.
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Event-loop threads multiplexing the connections. `0` (default)
    /// auto-sizes to the core count, capped at 4 — reactors are I/O bound
    /// and a handful multiplexes thousands of sockets.
    pub reactor_threads: usize,
    /// Compute-pool threads executing decoded requests. `0` (default)
    /// auto-sizes to `max(2, cores)`.
    pub dispatch_threads: usize,
    /// Global cap on decoded-but-unanswered requests across all sessions.
    /// Beyond it new compute lines are answered with typed `busy` lines
    /// instead of queueing without bound. `0` disables the cap.
    pub max_queue_depth: usize,
    /// Per-connection cap on decoded-but-unanswered requests; past it the
    /// reactor stops *reading* that connection (pipelining backpressure)
    /// until earlier work completes. `0` disables the cap.
    pub max_in_flight_per_conn: usize,
    /// Unflushed-response bytes past which a connection's reads pause: a
    /// slow reader stops generating new work instead of growing its write
    /// buffer without bound. `0` disables the threshold.
    pub max_write_buffer: usize,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            reactor_threads: 0,
            dispatch_threads: 0,
            max_queue_depth: 1 << 16,
            max_in_flight_per_conn: 256,
            max_write_buffer: 1 << 20,
        }
    }
}

impl ReactorConfig {
    /// Fluent validated constructor (see [`ReactorConfigBuilder`]).
    pub fn builder() -> ReactorConfigBuilder {
        ReactorConfigBuilder::default()
    }

    /// Checks the invariants [`ReactorConfigBuilder::build`] enforces.
    /// Zeros are legal everywhere here (0 = auto-size or cap disabled);
    /// what is rejected is an *inverted* pair of caps — a per-connection
    /// in-flight budget above the global queue depth can never be reached
    /// and indicates swapped values.
    pub fn validate(&self) -> entropydb_core::error::Result<()> {
        if self.max_queue_depth != 0
            && self.max_in_flight_per_conn != 0
            && self.max_in_flight_per_conn > self.max_queue_depth
        {
            return Err(ModelError::InvalidConfig(format!(
                "reactor max_in_flight_per_conn ({}) above max_queue_depth ({})",
                self.max_in_flight_per_conn, self.max_queue_depth
            )));
        }
        Ok(())
    }

    #[cfg(target_os = "linux")]
    fn resolve(&self) -> crate::reactor::ReactorTuning {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let nz = |v: usize, auto: usize| if v == 0 { auto } else { v };
        crate::reactor::ReactorTuning {
            reactor_threads: nz(self.reactor_threads, cores.clamp(1, 4)),
            dispatch_threads: nz(self.dispatch_threads, cores.max(2)),
            policy: crate::session::DecodePolicy {
                max_queue_depth: if self.max_queue_depth == 0 {
                    u64::MAX
                } else {
                    self.max_queue_depth as u64
                },
                max_in_flight: nz(self.max_in_flight_per_conn, usize::MAX),
                max_write_buffer: nz(self.max_write_buffer, usize::MAX),
            },
        }
    }
}

/// Builder for [`ReactorConfig`]; `build()` rejects inverted cap pairs.
#[derive(Debug, Clone, Default)]
pub struct ReactorConfigBuilder {
    config: ReactorConfig,
}

impl ReactorConfigBuilder {
    /// Sets the event-loop thread count (0 = auto).
    pub fn reactor_threads(mut self, threads: usize) -> Self {
        self.config.reactor_threads = threads;
        self
    }

    /// Sets the compute-pool thread count (0 = auto).
    pub fn dispatch_threads(mut self, threads: usize) -> Self {
        self.config.dispatch_threads = threads;
        self
    }

    /// Sets the global decoded-request queue cap (0 = uncapped).
    pub fn max_queue_depth(mut self, depth: usize) -> Self {
        self.config.max_queue_depth = depth;
        self
    }

    /// Sets the per-connection in-flight cap (0 = uncapped).
    pub fn max_in_flight_per_conn(mut self, cap: usize) -> Self {
        self.config.max_in_flight_per_conn = cap;
        self
    }

    /// Sets the write-buffer backpressure threshold (0 = unbounded).
    pub fn max_write_buffer(mut self, bytes: usize) -> Self {
        self.config.max_write_buffer = bytes;
        self
    }

    /// Validates and returns the config.
    pub fn build(self) -> entropydb_core::error::Result<ReactorConfig> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// Locks a mutex, recovering the inner value if a session thread panicked
/// while holding it. The shutdown path runs from `Drop` (possibly during a
/// panic unwind); propagating lock poison there would turn one panic into
/// a process abort and leak every still-registered session.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The typed rejection a connection over the session-capacity cap gets.
pub(crate) fn busy_at_capacity(cap: usize) -> ModelError {
    ModelError::Busy(format!("server at session capacity ({cap})"))
}

/// The one-line `stats` reply (gather-side cache counters).
pub(crate) fn stats_line<B: SummaryBackend>(engine: &QueryEngine<B>) -> String {
    match engine.cache_stats() {
        Some(s) => format!(
            "stats cache {} {} {} {}\n",
            s.hits, s.misses, s.coalesced, s.evicted
        ),
        None => "stats cache none\n".to_string(),
    }
}

/// The one-line `stats server` reply (serving-side counters).
pub(crate) fn server_stats_line(snapshot: &ServerStatsSnapshot) -> String {
    encode_server_stats(snapshot)
}

/// The one-line `stats ingest` reply (streaming-ingest counters; `stats
/// ingest none` from backends without a live delta shard).
pub(crate) fn ingest_stats_line<B: SummaryBackend>(engine: &QueryEngine<B>) -> String {
    encode_ingest_stats(engine.ingest_stats().as_ref())
}

/// A running server (either core). Dropping the handle shuts the server
/// down (prefer calling [`ServerHandle::shutdown`] explicitly).
pub struct ServerHandle {
    addr: SocketAddr,
    counters: Arc<ServerCounters>,
    core: Core,
}

enum Core {
    Threaded(ThreadedHandle),
    #[cfg(target_os = "linux")]
    Reactor(crate::reactor::ReactorHandle),
}

impl Core {
    fn shutdown_inner(&mut self) {
        match self {
            Core::Threaded(h) => h.shutdown_inner(),
            #[cfg(target_os = "linux")]
            Core::Reactor(h) => h.shutdown_inner(),
        }
    }
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of currently connected sessions.
    pub fn active_sessions(&self) -> usize {
        self.counters.active_sessions() as usize
    }

    /// A point-in-time copy of the server's operational counters — the
    /// same numbers the `stats server` session command reports.
    pub fn stats(&self) -> ServerStatsSnapshot {
        self.counters.snapshot()
    }

    /// A shareable live handle to the counters behind [`ServerHandle::stats`],
    /// for observers (e.g. a control channel) that outlive borrows of the
    /// handle itself.
    pub fn counters(&self) -> Arc<ServerCounters> {
        Arc::clone(&self.counters)
    }

    /// Stops accepting, disconnects every session, and joins all server
    /// threads. Returns once every server thread has exited.
    pub fn shutdown(mut self) {
        self.core.shutdown_inner();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.core.shutdown_inner();
    }
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("active_sessions", &self.active_sessions())
            .finish()
    }
}

/// Starts serving `engine` on `addr` (use port 0 for an ephemeral port;
/// the bound address is available via [`ServerHandle::local_addr`]).
///
/// On Linux this runs the event-driven reactor core: O(cores) event-loop
/// threads multiplex the connections, pipelined requests coalesce into
/// engine batches on a persistent compute pool, and responses flush via
/// interest-driven writes so a slow reader never parks a compute thread.
/// Elsewhere it falls back to the thread-per-connection core. Both speak
/// the identical wire protocol.
pub fn serve<B>(engine: QueryEngine<B>, addr: impl ToSocketAddrs) -> io::Result<ServerHandle>
where
    B: SummaryBackend + 'static,
{
    serve_with(engine, addr, ServerConfig::default())
}

/// [`serve`] with explicit serving policy (session idle deadline,
/// session-capacity cap). See [`ServerConfig`].
pub fn serve_with<B>(
    engine: QueryEngine<B>,
    addr: impl ToSocketAddrs,
    config: ServerConfig,
) -> io::Result<ServerHandle>
where
    B: SummaryBackend + 'static,
{
    serve_tuned(engine, addr, config, ReactorConfig::default())
}

/// [`serve_with`] with explicit reactor tuning (thread counts, admission
/// control, backpressure thresholds). See [`ReactorConfig`]. On non-Linux
/// targets the tuning is ignored and the thread-per-connection core runs
/// instead.
pub fn serve_tuned<B>(
    engine: QueryEngine<B>,
    addr: impl ToSocketAddrs,
    config: ServerConfig,
    tuning: ReactorConfig,
) -> io::Result<ServerHandle>
where
    B: SummaryBackend + 'static,
{
    #[cfg(target_os = "linux")]
    {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let counters = Arc::new(ServerCounters::default());
        let core = crate::reactor::spawn(
            Arc::new(engine),
            listener,
            &config,
            tuning.resolve(),
            Arc::clone(&counters),
        )?;
        Ok(ServerHandle {
            addr,
            counters,
            core: Core::Reactor(core),
        })
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = &tuning;
        serve_threaded(engine, addr, config)
    }
}

/// Starts the retained thread-per-connection core explicitly: one
/// blocking session thread per client. Slower under high concurrency
/// (it is the baseline the server bench measures the reactor against)
/// but fully portable; wire-compatible with the reactor core.
pub fn serve_threaded<B>(
    engine: QueryEngine<B>,
    addr: impl ToSocketAddrs,
    config: ServerConfig,
) -> io::Result<ServerHandle>
where
    B: SummaryBackend + 'static,
{
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let counters = Arc::new(ServerCounters::default());
    let shared = Arc::new(Shared {
        stop: AtomicBool::new(false),
        listener: listener.try_clone()?,
        next_conn: AtomicU64::new(0),
        conns: Mutex::new(HashMap::new()),
        sessions: Mutex::new(Vec::new()),
        counters: Arc::clone(&counters),
    });
    let engine = Arc::new(engine);
    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || accept_loop(listener, engine, shared, config))
    };
    Ok(ServerHandle {
        addr,
        counters,
        core: Core::Threaded(ThreadedHandle {
            addr,
            shared,
            accept: Some(accept),
        }),
    })
}

/// Shared session bookkeeping of the threaded core: live connection
/// handles (for shutdown) and thread handles (for joining). Both are
/// bounded by the number of *live* connections: a session deregisters its
/// connection on exit, and the accept loop reaps finished session threads.
struct Shared {
    stop: AtomicBool,
    /// A clone of the listening socket, used by shutdown to switch the
    /// accept loop to non-blocking. The wake-up connection alone is not
    /// enough: if that connect fails (backlog full, transient network
    /// refusal), a purely blocking accept would never observe `stop` and
    /// `shutdown` would hang — and any connection accepted in that window
    /// would leak its session thread past the join. Non-blocking mode makes
    /// the accept loop re-check `stop` on its own.
    listener: TcpListener,
    next_conn: AtomicU64,
    conns: Mutex<HashMap<u64, TcpStream>>,
    sessions: Mutex<Vec<JoinHandle<()>>>,
    counters: Arc<ServerCounters>,
}

/// The threaded core's running state.
struct ThreadedHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl ThreadedHandle {
    fn shutdown_inner(&mut self) {
        let Some(accept) = self.accept.take() else {
            return;
        };
        self.shared.stop.store(true, Ordering::SeqCst);
        // Two independent wake-ups for the blocking accept: switch the
        // listener to non-blocking (so any *future* accept attempt returns
        // immediately and re-checks `stop`) and poke it with a throwaway
        // connection (to unblock an accept already in progress). Relying on
        // the connect alone races: if it fails, the accept loop could block
        // indefinitely, and a session it spawned meanwhile would never be
        // joined below.
        let _ = self.shared.listener.set_nonblocking(true);
        let _ = TcpStream::connect(self.addr);
        let _ = accept.join();
        // The accept thread has exited, so every session that will ever
        // exist is registered in `conns`/`sessions` — a connection accepted
        // after shutdown began cannot slip past the joins below. Unblock
        // session readers, then join them.
        for conn in lock(&self.shared.conns).values() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        let sessions: Vec<_> = lock(&self.shared.sessions).drain(..).collect();
        for session in sessions {
            let _ = session.join();
        }
        debug_assert!(lock(&self.shared.sessions).is_empty());
    }
}

fn accept_loop<B>(
    listener: TcpListener,
    engine: Arc<QueryEngine<B>>,
    shared: Arc<Shared>,
    config: ServerConfig,
) where
    B: SummaryBackend + 'static,
{
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                // Shutdown switched the listener to non-blocking; re-check
                // `stop` instead of blocking forever (the wake-up connect
                // may have failed). The sleep only ever runs during the
                // shutdown window or after a transient accept error.
                std::thread::sleep(std::time::Duration::from_millis(1));
                continue;
            }
            Err(_) => {
                // Transient accept failure (e.g. EMFILE under fd
                // exhaustion): back off briefly instead of spinning a core
                // while the condition persists.
                std::thread::sleep(std::time::Duration::from_millis(1));
                continue;
            }
        };
        // A connection accepted after shutdown began is closed here, on the
        // accept thread, instead of spawning a session that nothing would
        // join.
        if shared.stop.load(Ordering::SeqCst) {
            let _ = stream.shutdown(Shutdown::Both);
            break;
        }
        shared.counters.add_accepted();
        let _ = stream.set_nodelay(true);
        // Session-capacity load shedding: over the cap, the connection is
        // answered with one typed busy line and closed — the client backs
        // off (or a gatherer fails over) instead of queueing invisibly.
        if let Some(cap) = config.max_sessions {
            if shared.counters.active_sessions() >= cap as u64 {
                shared.counters.add_shed();
                let mut stream = stream;
                let busy = busy_at_capacity(cap);
                // The rejection runs on a short-lived detached thread: after
                // writing the busy line it drains the client's in-flight
                // request briefly before closing. Closing immediately would
                // race the client's write — the resulting reset can discard
                // the unread busy line, turning a typed rejection into an
                // opaque transport error. (The reactor core does the same
                // flush-then-close on its write path, without the thread.)
                std::thread::spawn(move || {
                    let _ = stream.write_all(encode_outcome(&Err(busy)).as_bytes());
                    let _ = stream.flush();
                    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
                    let mut sink = [0u8; 512];
                    loop {
                        match io::Read::read(&mut stream, &mut sink) {
                            Ok(0) | Err(_) => break,
                            Ok(_) => continue,
                        }
                    }
                    let _ = stream.shutdown(Shutdown::Both);
                });
                continue;
            }
        }
        // The idle deadline applies to every request-line read of the
        // session; a timed-out read ends the session cleanly.
        let _ = stream.set_read_timeout(config.idle_timeout);
        let Ok(registered) = stream.try_clone() else {
            continue;
        };
        // Reap finished session threads so the handle list stays bounded
        // by the number of live connections.
        {
            let mut sessions = lock(&shared.sessions);
            let mut i = 0;
            while i < sessions.len() {
                if sessions[i].is_finished() {
                    let _ = sessions.swap_remove(i).join();
                } else {
                    i += 1;
                }
            }
        }
        let conn_id = shared.next_conn.fetch_add(1, Ordering::SeqCst);
        lock(&shared.conns).insert(conn_id, registered);
        shared.counters.session_started();
        let engine = Arc::clone(&engine);
        let shared_for_session = Arc::clone(&shared);
        let handle = std::thread::spawn(move || {
            session(&engine, stream, &shared_for_session.counters);
            // Deregister (closing the cloned fd) before going idle.
            lock(&shared_for_session.conns).remove(&conn_id);
            shared_for_session.counters.session_ended();
        });
        lock(&shared.sessions).push(handle);
    }
}

/// Reads one protocol line with the session's line-length cap applied; a
/// newline-free stream longer than [`MAX_LINE_BYTES`] errors instead of
/// growing the buffer without bound.
fn read_line_limited(reader: &mut BufReader<TcpStream>, line: &mut String) -> io::Result<usize> {
    let n = io::Read::take(io::Read::by_ref(reader), MAX_LINE_BYTES).read_line(line)?;
    if n as u64 >= MAX_LINE_BYTES && !line.ends_with('\n') {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "request line too long",
        ));
    }
    Ok(n)
}

/// One connection's read-dispatch-write loop. Any I/O error ends the
/// session; any query error answers on the wire error channel and keeps
/// the session alive.
fn session<B: SummaryBackend>(
    engine: &QueryEngine<B>,
    stream: TcpStream,
    counters: &ServerCounters,
) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        match read_line_limited(&mut reader, &mut line) {
            Ok(0) | Err(_) => break,
            Ok(n) => counters.add_bytes_in(n as u64),
        }
        let command = line.trim();
        if command.is_empty() {
            continue;
        }
        let reply = if command == "quit" {
            break;
        } else if command == "ping" {
            "pong\n".to_string()
        } else if command == "schema" {
            encode_schema(engine.schema(), engine.n())
        } else if command == "stats" {
            stats_line(engine)
        } else if command == "stats server" {
            server_stats_line(&counters.snapshot())
        } else if command == "stats ingest" {
            ingest_stats_line(engine)
        } else if command.starts_with("b1") {
            respond_probe(engine, command)
        } else if command.starts_with("a1") {
            respond_append(engine, command)
        } else if let Some(count) = command.strip_prefix("batch") {
            match handle_batch(engine, &mut reader, count.trim(), counters) {
                Ok(reply) => reply,
                Err(()) => break, // connection died mid-batch
            }
        } else {
            respond(engine, command)
        };
        counters.add_bytes_out(reply.len() as u64);
        if writer.write_all(reply.as_bytes()).is_err() || writer.flush().is_err() {
            break;
        }
    }
}

/// Server-side admission check on a decoded request: rejects the shapes
/// whose execution cost is decoupled from their wire length.
fn admit(req: QueryRequest) -> Result<QueryRequest> {
    if let QueryRequest::SampleRows { k, .. } = &req {
        if *k > MAX_SAMPLE_ROWS {
            return Err(ModelError::Remote(RemoteDetail::message(format!(
                "sample size {k} exceeds the served maximum {MAX_SAMPLE_ROWS}"
            ))));
        }
    }
    Ok(req)
}

/// Decodes and executes one request line, encoding the outcome (answer or
/// error) as one newline-terminated response line.
fn respond<B: SummaryBackend>(engine: &QueryEngine<B>, command: &str) -> String {
    let outcome = QueryRequest::decode(command)
        .and_then(admit)
        .and_then(|req| engine.execute(&req));
    encode_outcome(&outcome)
}

/// Decodes and executes one streaming-append line (`a1 ...`), answering
/// `ai1 ...` on success and the query error channel otherwise. The
/// decoder enforces the per-line admission cap
/// ([`crate::protocol::MAX_APPEND_ROWS`]); immutable backends answer the
/// typed [`ModelError::Immutable`] error.
fn respond_append<B: SummaryBackend>(engine: &QueryEngine<B>, command: &str) -> String {
    let outcome = decode_append(command)
        .and_then(|(token, rows)| engine.append_rows(&rows, token.as_deref()));
    match outcome {
        Ok(o) => encode_append_outcome(&o),
        Err(e) => {
            let mut line = QueryResponse::encode_error(&e);
            line.push('\n');
            line
        }
    }
}

/// Admission check for shard probes, mirroring [`admit`]: the shapes whose
/// execution cost is decoupled from their wire length are bounded by the
/// same serving caps.
fn admit_probe(req: ProbeRequest) -> Result<ProbeRequest> {
    match &req {
        ProbeRequest::SampleAt { k, indices, .. }
            if *k > MAX_SAMPLE_ROWS || indices.len() > MAX_SAMPLE_ROWS =>
        {
            Err(ModelError::Remote(RemoteDetail::message(format!(
                "sample probe size exceeds the served maximum {MAX_SAMPLE_ROWS}"
            ))))
        }
        ProbeRequest::CountRestricted { values, .. } if values.len() > MAX_BATCH => {
            Err(ModelError::Remote(RemoteDetail::message(format!(
                "candidate probe batch exceeds the served maximum {MAX_BATCH}"
            ))))
        }
        ProbeRequest::ProbabilityMany { masks } | ProbeRequest::CountMany { masks }
            if masks.len() > MAX_BATCH =>
        {
            Err(ModelError::Remote(RemoteDetail::message(format!(
                "mask probe batch exceeds the served maximum {MAX_BATCH}"
            ))))
        }
        _ => Ok(req),
    }
}

/// Decodes and executes one shard-probe line (`b1 ...`), answering on the
/// probe wire (`c1 ...`, errors on the probe error channel).
fn respond_probe<B: SummaryBackend>(engine: &QueryEngine<B>, command: &str) -> String {
    let outcome = ProbeRequest::decode(command)
        .and_then(admit_probe)
        .and_then(|req| engine.probe(&req));
    let mut line = match outcome {
        Ok(resp) => resp.encode(),
        Err(e) => ProbeResponse::encode_error(&e),
    };
    line.push('\n');
    line
}

pub(crate) fn encode_outcome(outcome: &Result<QueryResponse>) -> String {
    let mut line = match outcome {
        Ok(resp) => resp.encode(),
        Err(e) => QueryResponse::encode_error(e),
    };
    line.push('\n');
    line
}

/// Executes a contiguous run of pipelined compute lines (`q1 ...`,
/// `b1 ...`, `a1 ...`, or garbage), concatenating the responses in
/// request order: the decodable query requests go through the engine as
/// **one** parallel batch (`execute_batch` is bitwise-identical to
/// per-request `execute`), probes, appends, and decode errors answer in
/// place.
pub(crate) fn execute_run<B: SummaryBackend>(engine: &QueryEngine<B>, lines: &[String]) -> String {
    if let [line] = lines {
        // Single-request fast path: skip the slot machinery.
        return if line.starts_with("b1") {
            respond_probe(engine, line)
        } else if line.starts_with("a1") {
            respond_append(engine, line)
        } else {
            respond(engine, line)
        };
    }
    let mut slots: Vec<Option<String>> = Vec::with_capacity(lines.len());
    slots.resize_with(lines.len(), || None);
    let mut requests = Vec::new();
    let mut request_slots = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        if line.starts_with("b1") {
            slots[i] = Some(respond_probe(engine, line));
        } else if line.starts_with("a1") {
            // Appends answer in place, like probes: staging is cheap and
            // ordering against the batched queries is not observable (a
            // fold publishes asynchronously either way).
            slots[i] = Some(respond_append(engine, line));
        } else {
            match QueryRequest::decode(line).and_then(admit) {
                Ok(req) => {
                    requests.push(req);
                    request_slots.push(i);
                }
                Err(e) => slots[i] = Some(encode_outcome(&Err(e))),
            }
        }
    }
    let results = engine.execute_batch(&requests);
    for (slot, result) in request_slots.into_iter().zip(results) {
        slots[slot] = Some(encode_outcome(&result));
    }
    let mut reply = String::new();
    for slot in slots {
        reply.push_str(&slot.expect("every run slot filled"));
    }
    reply
}

/// Executes the payload lines of one complete `batch <n>` frame exactly
/// like the threaded core: decodable requests as one engine batch, one
/// response line per payload line, in order.
pub(crate) fn execute_batch_lines<B: SummaryBackend>(
    engine: &QueryEngine<B>,
    lines: &[String],
) -> String {
    let mut slots: Vec<Option<Result<QueryResponse>>> = Vec::with_capacity(lines.len());
    slots.resize_with(lines.len(), || None);
    let mut requests = Vec::new();
    for (line, slot) in lines.iter().zip(slots.iter_mut()) {
        match QueryRequest::decode(line.trim()).and_then(admit) {
            Ok(req) => requests.push(req),
            Err(e) => *slot = Some(Err(e)),
        }
    }
    // Decodable requests executed as one parallel engine batch; results
    // refill the still-empty slots in order.
    let mut results = engine.execute_batch(&requests).into_iter();
    for slot in slots.iter_mut() {
        if slot.is_none() {
            *slot = results.next();
        }
    }
    let mut reply = String::new();
    for slot in &slots {
        reply.push_str(&encode_outcome(
            slot.as_ref().expect("every batch slot filled"),
        ));
    }
    reply
}

/// Reads the `n` request lines of a `batch <n>` frame off a threaded-core
/// session and executes them via [`execute_batch_lines`]. `Err(())` means
/// the connection dropped mid-frame.
fn handle_batch<B: SummaryBackend>(
    engine: &QueryEngine<B>,
    reader: &mut BufReader<TcpStream>,
    count: &str,
    counters: &ServerCounters,
) -> std::result::Result<String, ()> {
    let n: usize = match count.parse() {
        Ok(n) if n <= MAX_BATCH => n,
        _ => {
            let err = ModelError::Parse {
                line: 0,
                message: format!("bad batch size {count:?} (max {MAX_BATCH})"),
            };
            return Ok(encode_outcome(&Err(err)));
        }
    };
    let mut lines = Vec::with_capacity(n);
    let mut line = String::new();
    for _ in 0..n {
        line.clear();
        match read_line_limited(reader, &mut line) {
            Ok(0) | Err(_) => return Err(()),
            Ok(read) => counters.add_bytes_in(read as u64),
        }
        lines.push(line.trim().to_string());
    }
    Ok(execute_batch_lines(engine, &lines))
}
