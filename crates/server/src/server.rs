//! The threaded TCP server: accept loop, per-connection sessions, batch
//! pipelining, graceful shutdown.

use crate::protocol::{encode_schema, MAX_BATCH, MAX_LINE_BYTES, MAX_SAMPLE_ROWS};
use entropydb_core::engine::{QueryEngine, SummaryBackend};
use entropydb_core::error::{ModelError, Result};
use entropydb_core::plan::{QueryRequest, QueryResponse};
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Shared session bookkeeping: live connection handles (for shutdown) and
/// thread handles (for joining). Both are bounded by the number of *live*
/// connections: a session deregisters its connection on exit, and the
/// accept loop reaps finished session threads.
struct Shared {
    stop: AtomicBool,
    next_conn: AtomicU64,
    conns: Mutex<HashMap<u64, TcpStream>>,
    sessions: Mutex<Vec<JoinHandle<()>>>,
    active: AtomicUsize,
}

/// A running server. Dropping the handle shuts the server down (prefer
/// calling [`ServerHandle::shutdown`] explicitly).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

/// Starts serving `engine` on `addr` (use port 0 for an ephemeral port;
/// the bound address is available via [`ServerHandle::local_addr`]).
///
/// Each accepted connection gets its own session thread; within a session,
/// `batch` frames route through [`QueryEngine::execute_batch`] and fan out
/// across the persistent worker pool, so one slow client cannot serialize
/// another client's batch and a single connection still saturates the
/// cores.
pub fn serve<B>(engine: QueryEngine<B>, addr: impl ToSocketAddrs) -> io::Result<ServerHandle>
where
    B: SummaryBackend + 'static,
{
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        stop: AtomicBool::new(false),
        next_conn: AtomicU64::new(0),
        conns: Mutex::new(HashMap::new()),
        sessions: Mutex::new(Vec::new()),
        active: AtomicUsize::new(0),
    });
    let engine = Arc::new(engine);
    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || accept_loop(listener, engine, shared))
    };
    Ok(ServerHandle {
        addr,
        shared,
        accept: Some(accept),
    })
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of currently connected sessions.
    pub fn active_sessions(&self) -> usize {
        self.shared.active.load(Ordering::SeqCst)
    }

    /// Stops accepting, disconnects every session, and joins all server
    /// threads. Returns once every session thread has exited.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let Some(accept) = self.accept.take() else {
            return;
        };
        self.shared.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = accept.join();
        // Unblock session readers, then join them.
        for conn in self.shared.conns.lock().expect("conns lock").values() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        let sessions: Vec<_> = self
            .shared
            .sessions
            .lock()
            .expect("sessions lock")
            .drain(..)
            .collect();
        for session in sessions {
            let _ = session.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("active_sessions", &self.active_sessions())
            .finish()
    }
}

fn accept_loop<B>(listener: TcpListener, engine: Arc<QueryEngine<B>>, shared: Arc<Shared>)
where
    B: SummaryBackend + 'static,
{
    for conn in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let _ = stream.set_nodelay(true);
        let Ok(registered) = stream.try_clone() else {
            continue;
        };
        // Reap finished session threads so the handle list stays bounded
        // by the number of live connections.
        {
            let mut sessions = shared.sessions.lock().expect("sessions lock");
            let mut i = 0;
            while i < sessions.len() {
                if sessions[i].is_finished() {
                    let _ = sessions.swap_remove(i).join();
                } else {
                    i += 1;
                }
            }
        }
        let conn_id = shared.next_conn.fetch_add(1, Ordering::SeqCst);
        shared
            .conns
            .lock()
            .expect("conns lock")
            .insert(conn_id, registered);
        shared.active.fetch_add(1, Ordering::SeqCst);
        let engine = Arc::clone(&engine);
        let shared_for_session = Arc::clone(&shared);
        let handle = std::thread::spawn(move || {
            session(&engine, stream);
            // Deregister (closing the cloned fd) before going idle.
            shared_for_session
                .conns
                .lock()
                .expect("conns lock")
                .remove(&conn_id);
            shared_for_session.active.fetch_sub(1, Ordering::SeqCst);
        });
        shared.sessions.lock().expect("sessions lock").push(handle);
    }
}

/// Reads one protocol line with the session's line-length cap applied; a
/// newline-free stream longer than [`MAX_LINE_BYTES`] errors instead of
/// growing the buffer without bound.
fn read_line_limited(reader: &mut BufReader<TcpStream>, line: &mut String) -> io::Result<usize> {
    let n = io::Read::take(io::Read::by_ref(reader), MAX_LINE_BYTES).read_line(line)?;
    if n as u64 >= MAX_LINE_BYTES && !line.ends_with('\n') {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "request line too long",
        ));
    }
    Ok(n)
}

/// One connection's read-dispatch-write loop. Any I/O error ends the
/// session; any query error answers on the wire error channel and keeps
/// the session alive.
fn session<B: SummaryBackend>(engine: &QueryEngine<B>, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        match read_line_limited(&mut reader, &mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let command = line.trim();
        if command.is_empty() {
            continue;
        }
        let reply = if command == "quit" {
            break;
        } else if command == "ping" {
            "pong\n".to_string()
        } else if command == "schema" {
            encode_schema(engine.schema())
        } else if let Some(count) = command.strip_prefix("batch") {
            match handle_batch(engine, &mut reader, count.trim()) {
                Ok(reply) => reply,
                Err(()) => break, // connection died mid-batch
            }
        } else {
            respond(engine, command)
        };
        if writer.write_all(reply.as_bytes()).is_err() || writer.flush().is_err() {
            break;
        }
    }
}

/// Server-side admission check on a decoded request: rejects the shapes
/// whose execution cost is decoupled from their wire length.
fn admit(req: QueryRequest) -> Result<QueryRequest> {
    if let QueryRequest::SampleRows { k, .. } = &req {
        if *k > MAX_SAMPLE_ROWS {
            return Err(ModelError::Remote(format!(
                "sample size {k} exceeds the served maximum {MAX_SAMPLE_ROWS}"
            )));
        }
    }
    Ok(req)
}

/// Decodes and executes one request line, encoding the outcome (answer or
/// error) as one newline-terminated response line.
fn respond<B: SummaryBackend>(engine: &QueryEngine<B>, command: &str) -> String {
    let outcome = QueryRequest::decode(command)
        .and_then(admit)
        .and_then(|req| engine.execute(&req));
    encode_outcome(&outcome)
}

fn encode_outcome(outcome: &Result<QueryResponse>) -> String {
    let mut line = match outcome {
        Ok(resp) => resp.encode(),
        Err(e) => QueryResponse::encode_error(e),
    };
    line.push('\n');
    line
}

/// Reads the `n` request lines of a `batch <n>` frame, executes the
/// decodable ones as one engine batch (parallel fan-out), and returns the
/// `n` response lines in request order. `Err(())` means the connection
/// dropped mid-frame.
fn handle_batch<B: SummaryBackend>(
    engine: &QueryEngine<B>,
    reader: &mut BufReader<TcpStream>,
    count: &str,
) -> std::result::Result<String, ()> {
    let n: usize = match count.parse() {
        Ok(n) if n <= MAX_BATCH => n,
        _ => {
            let err = ModelError::Parse {
                line: 0,
                message: format!("bad batch size {count:?} (max {MAX_BATCH})"),
            };
            return Ok(encode_outcome(&Err(err)));
        }
    };
    let mut slots: Vec<Option<Result<QueryResponse>>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let mut requests = Vec::new();
    let mut line = String::new();
    for slot in slots.iter_mut() {
        line.clear();
        match read_line_limited(reader, &mut line) {
            Ok(0) | Err(_) => return Err(()),
            Ok(_) => {}
        }
        match QueryRequest::decode(line.trim()).and_then(admit) {
            Ok(req) => requests.push(req),
            Err(e) => *slot = Some(Err(e)),
        }
    }
    // Decodable requests executed as one parallel engine batch; results
    // refill the still-empty slots in order.
    let mut results = engine.execute_batch(&requests).into_iter();
    for slot in slots.iter_mut() {
        if slot.is_none() {
            *slot = results.next();
        }
    }
    let mut reply = String::new();
    for slot in &slots {
        reply.push_str(&encode_outcome(
            slot.as_ref().expect("every batch slot filled"),
        ));
    }
    Ok(reply)
}
