//! The line-protocol pieces that are not already part of the query IR's
//! wire encoding: command words and the schema block.
//!
//! Requests and responses themselves are encoded by
//! `entropydb_core::plan` (`q1 ...` / `r1 ...` lines) and shard probes by
//! `entropydb_core::probe` (`b1 ...` / `c1 ...` lines); this module adds
//! the session-level commands (`ping`, `schema`, `batch <n>`, `quit`) and
//! a multi-line schema block so clients can resolve attribute names and
//! bin values without access to the base data:
//!
//! ```text
//! s1 <arity>
//! attr <index> <domain_size> cat <name>
//! attr <index> <domain_size> bin <lo> <hi> <name>
//! n <cardinality>
//! end
//! ```
//!
//! Attribute names go last on their line (they may contain spaces), the
//! same convention as the summary text format (`serialize.rs`). The `n`
//! line is the shard-manifest handshake: a scatter/gather gatherer reads
//! each shard's served cardinality (and schema) before fanning any query
//! out, verifying the placement manifest against what the node actually
//! serves. It is optional on decode for compatibility with pre-handshake
//! servers.

use entropydb_core::engine::AppendOutcome;
use entropydb_core::error::{ModelError, Result};
use entropydb_core::metrics::{IngestStatsSnapshot, ServerStatsSnapshot};
use entropydb_storage::{Attribute, Binner, Schema};
use std::fmt::Write as _;

/// Largest accepted `batch <n>`; guards the session loop against absurd
/// frame counts on a garbled line. [`Client`](crate::Client) transparently
/// splits larger batches into multiple frames.
pub const MAX_BATCH: usize = 1 << 16;

/// Largest `SAMPLE k` a served request may ask for. A sample request is
/// the one wire line whose cost is decoupled from its length (a few bytes
/// can demand an arbitrarily large allocation), so the server rejects
/// oversized ones on the error channel instead of attempting them.
pub const MAX_SAMPLE_ROWS: usize = 1 << 20;

/// Largest request line (bytes, newline included) a session will buffer.
/// Bounds the per-session read buffer against newline-free streams; any
/// legitimate request is far smaller (predicates over coded domains).
pub const MAX_LINE_BYTES: u64 = 1 << 20;

/// Largest row count a single `a1` append line may carry. Bounds the
/// staging work one wire line can demand, mirroring [`MAX_BATCH`] for
/// query frames; [`Client::append`](crate::Client::append) transparently
/// chunks larger batches into multiple lines.
pub const MAX_APPEND_ROWS: usize = MAX_BATCH;

/// Encodes a schema (and the served summary's cardinality — the
/// shard-manifest handshake) as the multi-line wire block (including the
/// trailing `end` line, newline-terminated).
pub fn encode_schema(schema: &Schema, n: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "s1 {}", schema.arity());
    for (i, attr) in schema.attributes().iter().enumerate() {
        match attr.binner() {
            Some(b) => {
                let _ = writeln!(
                    out,
                    "attr {} {} bin {} {} {}",
                    i,
                    attr.domain_size(),
                    b.lo(),
                    b.hi(),
                    attr.name()
                );
            }
            None => {
                let _ = writeln!(out, "attr {} {} cat {}", i, attr.domain_size(), attr.name());
            }
        }
    }
    let _ = writeln!(out, "n {n}");
    out.push_str("end\n");
    out
}

/// Encodes the `stats server` reply: one line of serving-side counters,
/// mirroring the `stats cache ...` convention.
///
/// ```text
/// stats server <active> <accepted> <shed> <bytes_in> <bytes_out> <queue_depth>
/// ```
pub fn encode_server_stats(s: &ServerStatsSnapshot) -> String {
    format!(
        "stats server {} {} {} {} {} {}\n",
        s.active_sessions,
        s.accepted_total,
        s.shed_total,
        s.bytes_in,
        s.bytes_out,
        s.dispatch_depth
    )
}

/// Decodes one `stats server ...` line (see [`encode_server_stats`]).
pub fn decode_server_stats(line: &str) -> Result<ServerStatsSnapshot> {
    let mut toks = line.split_ascii_whitespace();
    if toks.next() != Some("stats") || toks.next() != Some("server") {
        return Err(wire_error(format!(
            "unrecognized server stats line {line:?}"
        )));
    }
    let mut field = |what: &str| parse_token::<u64>(toks.next(), what);
    Ok(ServerStatsSnapshot {
        active_sessions: field("active sessions")?,
        accepted_total: field("accepted total")?,
        shed_total: field("shed total")?,
        bytes_in: field("bytes in")?,
        bytes_out: field("bytes out")?,
        dispatch_depth: field("dispatch depth")?,
    })
}

/// Encodes one streaming-ingest append line:
///
/// ```text
/// a1 <token|-> <rows> <arity> <codes...>
/// ```
///
/// `token` is the client's idempotency token (whitespace-free; `-` means
/// none), `<codes...>` the rows in row-major order (`rows * arity` coded
/// values). A retry of the same line after a transport error is absorbed
/// by the server's token window instead of double-ingesting.
pub fn encode_append(token: Option<&str>, rows: &[Vec<u32>]) -> String {
    let arity = rows.first().map_or(0, Vec::len);
    let mut out = String::with_capacity(16 + rows.len() * arity * 4);
    let _ = write!(out, "a1 {} {} {}", token.unwrap_or("-"), rows.len(), arity);
    for row in rows {
        for &code in row {
            let _ = write!(out, " {code}");
        }
    }
    out.push('\n');
    out
}

/// Decodes one `a1 ...` append line (see [`encode_append`]). Rejects
/// lines carrying more than [`MAX_APPEND_ROWS`] rows and truncated or
/// over-long payloads.
pub fn decode_append(line: &str) -> Result<(Option<String>, Vec<Vec<u32>>)> {
    let mut toks = line.split_ascii_whitespace();
    if toks.next() != Some("a1") {
        return Err(wire_error(format!("unrecognized append line {line:?}")));
    }
    let token = match toks.next() {
        Some("-") => None,
        Some(t) => Some(t.to_string()),
        None => return Err(wire_error("append line missing token".to_string())),
    };
    let rows: usize = parse_token(toks.next(), "append row count")?;
    let arity: usize = parse_token(toks.next(), "append arity")?;
    if rows > MAX_APPEND_ROWS {
        return Err(wire_error(format!(
            "append of {rows} rows exceeds the served maximum {MAX_APPEND_ROWS}"
        )));
    }
    if rows > 0 && arity == 0 {
        return Err(wire_error(
            "append rows must have nonzero arity".to_string(),
        ));
    }
    let mut decoded = Vec::with_capacity(rows);
    for _ in 0..rows {
        let mut row = Vec::with_capacity(arity);
        for _ in 0..arity {
            row.push(parse_token(toks.next(), "append code")?);
        }
        decoded.push(row);
    }
    if toks.next().is_some() {
        return Err(wire_error(format!(
            "append line has trailing tokens past {rows} rows"
        )));
    }
    Ok((token, decoded))
}

/// Encodes the reply to an `a1` append:
///
/// ```text
/// ai1 <dup:0|1> <accepted> <staged> <epoch>
/// ```
///
/// `dup 1` means the idempotency token was already recorded — the rows
/// were NOT re-ingested and the counts describe the original acceptance's
/// current view.
pub fn encode_append_outcome(o: &AppendOutcome) -> String {
    format!(
        "ai1 {} {} {} {}\n",
        u8::from(o.duplicate),
        o.accepted,
        o.staged,
        o.epoch
    )
}

/// Decodes one `ai1 ...` append reply (see [`encode_append_outcome`]).
pub fn decode_append_outcome(line: &str) -> Result<AppendOutcome> {
    let mut toks = line.split_ascii_whitespace();
    if toks.next() != Some("ai1") {
        return Err(wire_error(format!("unrecognized append reply {line:?}")));
    }
    let dup: u8 = parse_token(toks.next(), "append duplicate flag")?;
    if dup > 1 {
        return Err(wire_error(format!("append duplicate flag {dup} not 0/1")));
    }
    Ok(AppendOutcome {
        duplicate: dup == 1,
        accepted: parse_token(toks.next(), "append accepted count")?,
        staged: parse_token(toks.next(), "append staged count")?,
        epoch: parse_token(toks.next(), "append epoch")?,
    })
}

/// Encodes the `stats ingest` reply: the live backend's ingest counters,
/// mirroring the `stats cache ...` / `stats server ...` convention.
///
/// ```text
/// stats ingest <epoch> <staged> <appended> <duplicates> <folds> <seals> <retired>
/// ```
///
/// A backend without a live delta shard answers `stats ingest none`.
pub fn encode_ingest_stats(s: Option<&IngestStatsSnapshot>) -> String {
    match s {
        Some(s) => format!(
            "stats ingest {} {} {} {} {} {} {}\n",
            s.epoch,
            s.staged_rows,
            s.appended_rows,
            s.duplicate_appends,
            s.folds,
            s.seals,
            s.retired_segments
        ),
        None => "stats ingest none\n".to_string(),
    }
}

/// Decodes one `stats ingest ...` line (see [`encode_ingest_stats`]).
pub fn decode_ingest_stats(line: &str) -> Result<Option<IngestStatsSnapshot>> {
    let mut toks = line.split_ascii_whitespace();
    if toks.next() != Some("stats") || toks.next() != Some("ingest") {
        return Err(wire_error(format!(
            "unrecognized ingest stats line {line:?}"
        )));
    }
    let mut toks = toks.peekable();
    if toks.peek() == Some(&"none") {
        return Ok(None);
    }
    let mut field = |what: &str| parse_token::<u64>(toks.next(), what);
    Ok(Some(IngestStatsSnapshot {
        epoch: field("ingest epoch")?,
        staged_rows: field("staged rows")?,
        appended_rows: field("appended rows")?,
        duplicate_appends: field("duplicate appends")?,
        folds: field("fold count")?,
        seals: field("seal count")?,
        retired_segments: field("retired segments")?,
    }))
}

fn wire_error(message: String) -> ModelError {
    ModelError::Parse { line: 0, message }
}

fn parse_token<T: std::str::FromStr>(token: Option<&str>, what: &str) -> Result<T> {
    let t = token.ok_or_else(|| wire_error(format!("schema block missing {what}")))?;
    t.parse()
        .map_err(|_| wire_error(format!("cannot parse {what} from {t:?}")))
}

/// Decodes a schema block: `header` is the `s1 ...` line already read;
/// `next_line` yields each following line (the caller reads them off the
/// connection). Returns the schema plus the served cardinality when the
/// server sent the handshake `n` line.
pub fn decode_schema(
    header: &str,
    mut next_line: impl FnMut() -> Result<String>,
) -> Result<(Schema, Option<u64>)> {
    let mut toks = header.split_ascii_whitespace();
    if toks.next() != Some("s1") {
        return Err(wire_error(format!("unrecognized schema header {header:?}")));
    }
    let arity: usize = parse_token(toks.next(), "arity")?;
    let mut attributes = Vec::with_capacity(arity);
    for expected in 0..arity {
        let line = next_line()?;
        let mut toks = line.split_ascii_whitespace();
        if toks.next() != Some("attr") {
            return Err(wire_error(format!("expected attr line, found {line:?}")));
        }
        let idx: usize = parse_token(toks.next(), "attr index")?;
        if idx != expected {
            return Err(wire_error(format!("attr index {idx}, expected {expected}")));
        }
        let size: usize = parse_token(toks.next(), "domain size")?;
        let kind = toks
            .next()
            .ok_or_else(|| wire_error("attr line missing kind".to_string()))?;
        let rest: Vec<&str> = toks.collect();
        let attribute = match kind {
            "cat" => Attribute::categorical(rest.join(" "), size).map_err(ModelError::Storage)?,
            "bin" => {
                if rest.len() < 3 {
                    return Err(wire_error("binned attr needs: lo hi name".to_string()));
                }
                let lo: f64 = parse_token(Some(rest[0]), "bin lo")?;
                let hi: f64 = parse_token(Some(rest[1]), "bin hi")?;
                let binner = Binner::new(lo, hi, size).map_err(ModelError::Storage)?;
                Attribute::binned(rest[2..].join(" "), binner)
            }
            other => return Err(wire_error(format!("unknown attribute kind {other:?}"))),
        };
        attributes.push(attribute);
    }
    let mut n = None;
    let mut end = next_line()?;
    if let Some(rest) = end.trim().strip_prefix("n ") {
        n = Some(parse_token(Some(rest.trim()), "served cardinality")?);
        end = next_line()?;
    }
    if end.trim() != "end" {
        return Err(wire_error(format!("expected end, found {end:?}")));
    }
    Ok((Schema::new(attributes), n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_block_round_trips() {
        let schema = Schema::new(vec![
            Attribute::categorical("origin airport", 7).unwrap(),
            Attribute::binned("distance", Binner::new(-2.5, 800.0, 16).unwrap()),
        ]);
        let block = encode_schema(&schema, 1234);
        let mut lines = block.lines();
        let header = lines.next().unwrap().to_string();
        let (decoded, n) =
            decode_schema(&header, || Ok(lines.next().unwrap().to_string())).unwrap();
        assert_eq!(n, Some(1234));
        assert_eq!(decoded.arity(), 2);
        assert_eq!(decoded.attr_by_name("origin airport").unwrap().0, 0);
        let b = decoded.attributes()[1]
            .binner()
            .expect("binner survives the round trip");
        assert_eq!(b.lo(), -2.5);
        assert_eq!(b.hi(), 800.0);
        assert_eq!(b.num_bins(), 16);
    }

    #[test]
    fn malformed_schema_blocks_rejected() {
        let err = |text: &str| {
            let mut lines = text.lines();
            let header = lines.next().unwrap_or("").to_string();
            decode_schema(&header, || {
                lines
                    .next()
                    .map(str::to_string)
                    .ok_or(ModelError::ShapeMismatch)
            })
            .is_err()
        };
        assert!(err("bogus"));
        assert!(err("s1 1\nattr 1 4 cat x\nend"));
        assert!(err("s1 1\nattr 0 4 vec x\nend"));
        assert!(err("s1 1\nattr 0 4 cat x"));
        assert!(err("s1 2\nattr 0 4 cat x\nend"));
        assert!(err("s1 1\nattr 0 4 cat x\nn twelve\nend"));
    }

    #[test]
    fn server_stats_line_round_trips() {
        let snap = ServerStatsSnapshot {
            active_sessions: 3,
            accepted_total: 17,
            shed_total: 2,
            bytes_in: 4096,
            bytes_out: 8192,
            dispatch_depth: 5,
        };
        let line = encode_server_stats(&snap);
        assert_eq!(line, "stats server 3 17 2 4096 8192 5\n");
        assert_eq!(decode_server_stats(line.trim()).unwrap(), snap);
        assert!(decode_server_stats("stats cache 1 2 3 4").is_err());
        assert!(decode_server_stats("stats server 1 2 3").is_err());
    }

    #[test]
    fn append_line_round_trips() {
        let rows = vec![vec![1u32, 2, 3], vec![4, 5, 6]];
        let line = encode_append(Some("tok-7"), &rows);
        assert_eq!(line, "a1 tok-7 2 3 1 2 3 4 5 6\n");
        let (token, decoded) = decode_append(line.trim()).unwrap();
        assert_eq!(token.as_deref(), Some("tok-7"));
        assert_eq!(decoded, rows);
        // Tokenless appends use the `-` placeholder.
        let line = encode_append(None, &rows);
        let (token, decoded) = decode_append(line.trim()).unwrap();
        assert_eq!(token, None);
        assert_eq!(decoded, rows);
        // Malformed shapes are rejected.
        assert!(decode_append("a1 t 2 3 1 2 3 4 5").is_err()); // truncated
        assert!(decode_append("a1 t 1 3 1 2 3 9").is_err()); // trailing
        assert!(decode_append("a1 t 1 0").is_err()); // zero arity
        assert!(decode_append("q1 t 1 1 0").is_err());
        let over = format!("a1 - {} 1", MAX_APPEND_ROWS + 1);
        assert!(decode_append(&over).is_err());
    }

    #[test]
    fn append_outcome_round_trips() {
        let outcome = AppendOutcome {
            accepted: 12,
            duplicate: false,
            staged: 40,
            epoch: 3,
        };
        let line = encode_append_outcome(&outcome);
        assert_eq!(line, "ai1 0 12 40 3\n");
        assert_eq!(decode_append_outcome(line.trim()).unwrap(), outcome);
        let dup = AppendOutcome {
            duplicate: true,
            ..outcome
        };
        let line = encode_append_outcome(&dup);
        assert_eq!(line, "ai1 1 12 40 3\n");
        assert_eq!(decode_append_outcome(line.trim()).unwrap(), dup);
        assert!(decode_append_outcome("ai1 2 1 1 1").is_err());
        assert!(decode_append_outcome("r1 0 1 1 1").is_err());
    }

    #[test]
    fn ingest_stats_line_round_trips() {
        let snap = IngestStatsSnapshot {
            epoch: 4,
            staged_rows: 10,
            appended_rows: 200,
            duplicate_appends: 1,
            folds: 5,
            seals: 2,
            retired_segments: 1,
        };
        let line = encode_ingest_stats(Some(&snap));
        assert_eq!(line, "stats ingest 4 10 200 1 5 2 1\n");
        assert_eq!(decode_ingest_stats(line.trim()).unwrap(), Some(snap));
        let none = encode_ingest_stats(None);
        assert_eq!(none, "stats ingest none\n");
        assert_eq!(decode_ingest_stats(none.trim()).unwrap(), None);
        assert!(decode_ingest_stats("stats cache 1 2 3 4").is_err());
        assert!(decode_ingest_stats("stats ingest 1 2").is_err());
    }

    /// Pre-handshake blocks (no `n` line) still decode — the handshake is
    /// additive.
    #[test]
    fn schema_block_without_cardinality_still_decodes() {
        let text = "s1 1\nattr 0 4 cat x\nend";
        let mut lines = text.lines();
        let header = lines.next().unwrap().to_string();
        let (schema, n) = decode_schema(&header, || Ok(lines.next().unwrap().to_string())).unwrap();
        assert_eq!(schema.arity(), 1);
        assert_eq!(n, None);
    }
}
