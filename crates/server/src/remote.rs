//! Shard-per-node placement: [`RemoteShardedSummary`], a
//! [`SummaryBackend`] whose per-shard fan-out goes over the wire.
//!
//! A [`ShardedSummary`](entropydb_core::sharded::ShardedSummary) fans
//! queries out across in-process shard models through the
//! shard-source-agnostic merge layer (`entropydb_core::scatter`).
//! [`RemoteShardedSummary`] keeps the *merge side of that layer unchanged*
//! and swaps the probe side: each shard is an `entropydb-serve` instance
//! reached over TCP, addressed by a cluster manifest
//! ([`ClusterShard`]), and every per-shard primitive becomes a mask-level
//! probe line (`entropydb_core::probe`). Because the gatherer's merge
//! arithmetic, stratified sampling streams, and candidate re-probe logic
//! are the very same code paths the local backend runs — and because the
//! probe wire encoding round-trips floats bit-exactly — remote answers are
//! **bitwise identical** to a local `ShardedSummary` over the same shard
//! models, on every `QueryRequest` variant.
//!
//! # Fault tolerance
//!
//! A manifest entry may list **several replica endpoints** for one shard
//! (manifest v2). The gatherer fails over between them:
//!
//! * Every probe connection carries socket deadlines
//!   ([`FailoverConfig::connect_timeout`] /
//!   [`FailoverConfig::probe_timeout`]), so a black-holed node costs a
//!   bounded wait instead of hanging the fan-out.
//! * Failures are classified. **Transport** deaths (reset, refused, EOF,
//!   deadline expiry) and **protocol** garbage (an undecodable response
//!   frame) fail over to the next replica with capped exponential backoff.
//!   A **busy** line ([`ModelError::Busy`], the serving layer shedding
//!   load) backs off and retries. A **deterministic** server error line
//!   ([`ModelError::Remote`]) fails the call immediately — re-sending it
//!   anywhere would just re-compute the same error.
//! * Each replica keeps per-node health: a consecutive-failure circuit
//!   breaker opens after [`FailoverConfig::breaker_threshold`] straight
//!   failures and the replica is skipped for a (capped, exponentially
//!   growing) cooldown, after which one probation probe may re-close it.
//!   When *every* replica's breaker is open the gatherer still sends
//!   probation probes (the least-recently-failed replica first) so an
//!   outage heals without operator action.
//! * Every **fresh dial** re-runs the shard-manifest handshake (schema +
//!   cardinality). A replica serving a changed blob is **evicted** — it
//!   can never contribute an answer, so failover never changes results:
//!   whenever any live replica holds the shard, answers remain bitwise
//!   identical to a healthy cluster. A background re-handshake thread
//!   ([`RemoteShardedSummary::start_rehandshake`]) re-verifies idle
//!   replicas periodically and evicts changed blobs proactively.
//!
//! Connections are pooled per replica and reused across queries. A
//! connection involved in any failure is dropped, never pooled. If a
//! shard's whole replica set is exhausted the failure surfaces as
//! [`ModelError::Degraded`] naming the shard and its primary address,
//! carrying the per-attempt failure trail; the engine's batch path keeps
//! that per-request, so one dead shard cannot poison a pipelined batch.

use crate::client::{generate_append_token, Client, ClientConfig, ClientError};
use entropydb_core::assignment::Mask;
use entropydb_core::engine::{AppendOutcome, SummaryBackend};
use entropydb_core::error::{ModelError, RemoteDetail, Result};
use entropydb_core::metrics::{CacheStatsSnapshot, IngestStatsSnapshot};
use entropydb_core::probe::{ProbeRequest, ProbeResponse};
use entropydb_core::query::Estimate;
use entropydb_core::scatter::{self, GatherCache, ShardCacheId, ShardProbe};
use entropydb_core::serialize::ClusterShard;
use entropydb_storage::{AttrId, Schema};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Failover policy of the remote scatter/gather backend: socket deadlines,
/// retry/backoff budget, and circuit-breaker thresholds.
#[derive(Debug, Clone)]
pub struct FailoverConfig {
    /// TCP connect deadline per dial attempt (default 2 s).
    pub connect_timeout: Option<Duration>,
    /// Read/write deadline on probe traffic (default 5 s): the longest a
    /// single wire read or write may block before the replica is treated
    /// as hung and the gatherer fails over.
    pub probe_timeout: Option<Duration>,
    /// Attempt budget per call, as a multiple of the replica count
    /// (default 2): a shard with `r` replicas gets at most
    /// `max(1, attempts_per_replica) * r` attempts before surfacing
    /// [`ModelError::Degraded`].
    pub attempts_per_replica: usize,
    /// First backoff sleep once every replica has been tried (default
    /// 10 ms). The first failover to an untried replica is immediate.
    pub backoff_base: Duration,
    /// Backoff ceiling for the capped exponential (default 500 ms).
    pub backoff_cap: Duration,
    /// Consecutive failures that open a replica's circuit breaker
    /// (default 3).
    pub breaker_threshold: u32,
    /// Cooldown of a freshly opened breaker (default 1 s); doubles with
    /// each further consecutive failure.
    pub breaker_cooldown: Duration,
    /// Cooldown ceiling (default 30 s).
    pub breaker_cooldown_cap: Duration,
}

impl Default for FailoverConfig {
    fn default() -> Self {
        FailoverConfig {
            connect_timeout: Some(Duration::from_secs(2)),
            probe_timeout: Some(Duration::from_secs(5)),
            attempts_per_replica: 2,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_secs(1),
            breaker_cooldown_cap: Duration::from_secs(30),
        }
    }
}

impl FailoverConfig {
    /// Fluent validated constructor (see [`FailoverConfigBuilder`]).
    pub fn builder() -> FailoverConfigBuilder {
        FailoverConfigBuilder::default()
    }

    /// Checks the invariants [`FailoverConfigBuilder::build`] enforces.
    pub fn validate(&self) -> Result<()> {
        if self.attempts_per_replica == 0 {
            return Err(ModelError::InvalidConfig(
                "failover attempts_per_replica must be positive".to_string(),
            ));
        }
        if self.breaker_threshold == 0 {
            return Err(ModelError::InvalidConfig(
                "failover breaker_threshold must be positive".to_string(),
            ));
        }
        if self.backoff_cap < self.backoff_base {
            return Err(ModelError::InvalidConfig(format!(
                "failover backoff_cap ({:?}) below backoff_base ({:?})",
                self.backoff_cap, self.backoff_base
            )));
        }
        if self.breaker_cooldown_cap < self.breaker_cooldown {
            return Err(ModelError::InvalidConfig(format!(
                "failover breaker_cooldown_cap ({:?}) below breaker_cooldown ({:?})",
                self.breaker_cooldown_cap, self.breaker_cooldown
            )));
        }
        Ok(())
    }

    fn client_config(&self) -> ClientConfig {
        ClientConfig {
            connect_timeout: self.connect_timeout,
            read_timeout: self.probe_timeout,
            write_timeout: self.probe_timeout,
        }
    }

    fn max_attempts(&self, replicas: usize) -> usize {
        self.attempts_per_replica.max(1) * replicas.max(1)
    }
}

/// Builder for [`FailoverConfig`]; `build()` rejects zero budgets and
/// inverted backoff/cooldown bounds.
#[derive(Debug, Clone, Default)]
pub struct FailoverConfigBuilder {
    config: FailoverConfig,
}

impl FailoverConfigBuilder {
    /// Sets the per-dial TCP connect deadline (`None` = unbounded).
    pub fn connect_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.config.connect_timeout = timeout;
        self
    }

    /// Sets the probe-traffic read/write deadline (`None` = unbounded).
    pub fn probe_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.config.probe_timeout = timeout;
        self
    }

    /// Sets the attempt budget per call, as a multiple of replica count.
    pub fn attempts_per_replica(mut self, attempts: usize) -> Self {
        self.config.attempts_per_replica = attempts;
        self
    }

    /// Sets the first backoff sleep.
    pub fn backoff_base(mut self, base: Duration) -> Self {
        self.config.backoff_base = base;
        self
    }

    /// Sets the backoff ceiling.
    pub fn backoff_cap(mut self, cap: Duration) -> Self {
        self.config.backoff_cap = cap;
        self
    }

    /// Sets the consecutive-failure breaker threshold.
    pub fn breaker_threshold(mut self, threshold: u32) -> Self {
        self.config.breaker_threshold = threshold;
        self
    }

    /// Sets the initial breaker cooldown.
    pub fn breaker_cooldown(mut self, cooldown: Duration) -> Self {
        self.config.breaker_cooldown = cooldown;
        self
    }

    /// Sets the breaker cooldown ceiling.
    pub fn breaker_cooldown_cap(mut self, cap: Duration) -> Self {
        self.config.breaker_cooldown_cap = cap;
        self
    }

    /// Validates and returns the config.
    pub fn build(self) -> Result<FailoverConfig> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// Per-replica health: the consecutive-failure circuit breaker.
#[derive(Debug, Default)]
struct Health {
    consecutive_failures: u32,
    /// While set and in the future, the breaker is open and the replica is
    /// skipped (except for probation probes when no replica is closed).
    open_until: Option<Instant>,
    /// A replica caught serving the wrong blob (schema or cardinality
    /// mismatch on a re-handshake) is permanently removed from rotation.
    evicted: bool,
}

impl Health {
    fn record_failure(&mut self, config: &FailoverConfig) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        if self.consecutive_failures >= config.breaker_threshold {
            let over = self.consecutive_failures - config.breaker_threshold;
            let cooldown = config
                .breaker_cooldown
                .saturating_mul(1u32 << over.min(16))
                .min(config.breaker_cooldown_cap);
            self.open_until = Some(Instant::now() + cooldown);
        }
    }

    fn record_success(&mut self) {
        self.consecutive_failures = 0;
        self.open_until = None;
    }
}

/// One replica endpoint of a remote shard: its address, a pool of reusable
/// verified probe connections, and its breaker state.
#[derive(Debug)]
pub struct Replica {
    addr: String,
    conns: Mutex<Vec<Client>>,
    health: Mutex<Health>,
}

impl Replica {
    fn new(addr: String) -> Replica {
        Replica {
            addr,
            conns: Mutex::new(Vec::new()),
            health: Mutex::new(Health::default()),
        }
    }

    /// The replica's serving address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// True once the replica was caught serving a changed blob and removed
    /// from rotation.
    pub fn is_evicted(&self) -> bool {
        self.health.lock().expect("replica health").evicted
    }

    /// Current consecutive-failure count (introspection for tests and the
    /// cluster probe tool).
    pub fn consecutive_failures(&self) -> u32 {
        self.health
            .lock()
            .expect("replica health")
            .consecutive_failures
    }

    /// True while the circuit breaker is open (the replica is skipped
    /// except for probation probes).
    pub fn breaker_open(&self) -> bool {
        self.health
            .lock()
            .expect("replica health")
            .open_until
            .is_some_and(|t| t > Instant::now())
    }

    /// Number of idle pooled connections (introspection for tests).
    pub fn idle_conns(&self) -> usize {
        self.conns.lock().expect("conn pool").len()
    }

    fn put_back(&self, client: Client) {
        self.conns.lock().expect("conn pool").push(client);
    }

    fn evict(&self) {
        let mut health = self.health.lock().expect("replica health");
        health.evicted = true;
    }
}

/// How a fresh dial-plus-handshake failed: a dead/hung/garbled node (fail
/// over, count toward the breaker) versus a live node serving the wrong
/// blob (evict permanently).
enum DialFailure {
    Transport(String),
    WrongBlob(String),
}

/// One remote shard: its replica set, failover policy, and the expected
/// handshake identity (cardinality from the manifest, schema once known).
#[derive(Debug)]
pub struct RemoteShard {
    index: usize,
    /// Shard cardinality `n_s`. Static placements verify it on every
    /// handshake; **dynamic** placements (manifest `n = 0`, a live-ingest
    /// node whose cardinality grows as deltas fold) adopt whatever the
    /// node reports instead, updating this cell.
    n: AtomicU64,
    /// Manifest entry declared `n = 0`: a live node with a delta shard.
    dynamic: bool,
    replicas: Vec<Replica>,
    /// Replica that last answered successfully; probes start there.
    preferred: AtomicUsize,
    config: FailoverConfig,
    /// The cluster-wide schema, set at connect time; every later fresh
    /// dial verifies the replica still serves it.
    expected_schema: OnceLock<Schema>,
    /// Blob generation: bumped whenever a replica is caught serving a
    /// changed blob (wrong-blob eviction) and whenever a live shard's
    /// published **epoch** is observed to change (a delta fold). The
    /// gather-side probe cache mixes this into its keys, so every cached
    /// answer for the shard becomes unreachable the instant a swap or a
    /// fold is detected.
    generation: Arc<AtomicU64>,
    /// Last ingest epoch observed from this shard (append replies,
    /// `stats ingest` polls, dynamic handshakes). See
    /// [`RemoteShard::note_epoch`].
    last_seen_epoch: AtomicU64,
}

impl RemoteShard {
    fn new(entry: &ClusterShard, config: FailoverConfig) -> RemoteShard {
        RemoteShard {
            index: entry.index,
            n: AtomicU64::new(entry.n),
            dynamic: entry.n == 0,
            replicas: entry.addrs.iter().cloned().map(Replica::new).collect(),
            preferred: AtomicUsize::new(0),
            config,
            expected_schema: OnceLock::new(),
            generation: Arc::new(AtomicU64::new(0)),
            last_seen_epoch: AtomicU64::new(0),
        }
    }

    /// Evicts replica `idx` for serving the wrong blob and bumps the
    /// shard's blob generation (cache invalidation) — the single path
    /// every wrong-blob detection goes through.
    fn evict_replica(&self, idx: usize) {
        self.replicas[idx].evict();
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// How many wrong-blob evictions this shard has seen (the probe-cache
    /// invalidation generation; introspection for tests and drills).
    pub fn blob_generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Shard index within the cluster.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The shard's primary (first-listed) replica address.
    pub fn addr(&self) -> &str {
        self.replicas.first().map_or("", |r| r.addr.as_str())
    }

    /// The shard's replica set, in manifest order.
    pub fn replicas(&self) -> &[Replica] {
        &self.replicas
    }

    /// Shard cardinality `n_s` (verified during every handshake; adopted
    /// from the node for dynamic live-ingest placements).
    pub fn n(&self) -> u64 {
        self.n.load(Ordering::Acquire)
    }

    /// Whether this placement is dynamic (manifest `n = 0`: a live node
    /// whose cardinality grows as appended rows fold in).
    pub fn is_dynamic(&self) -> bool {
        self.dynamic
    }

    /// Last ingest epoch observed from this shard, `0` before any append
    /// or `stats ingest` reply has been seen.
    pub fn last_seen_epoch(&self) -> u64 {
        self.last_seen_epoch.load(Ordering::Acquire)
    }

    /// Records an ingest epoch observed on an append reply, a
    /// `stats ingest` poll, or a dynamic handshake. A **change** bumps the
    /// shard's blob generation, which orphans every gather-side cached
    /// answer computed against the previous published mixture — the
    /// remote arm of the zero-stale-answers invariant (locally the epoch
    /// *is* the cache generation; over the wire the gateway invalidates
    /// the moment a new epoch becomes visible to it).
    pub fn note_epoch(&self, epoch: u64) {
        let prev = self.last_seen_epoch.swap(epoch, Ordering::AcqRel);
        if prev != epoch {
            self.generation.fetch_add(1, Ordering::Release);
        }
    }

    /// Number of idle pooled connections across all replicas
    /// (introspection for tests).
    pub fn idle_conns(&self) -> usize {
        self.replicas.iter().map(Replica::idle_conns).sum()
    }

    /// Decorates a deterministic failure with the shard's identity. The
    /// attribution is structured ([`RemoteDetail::shard`]); the rendered
    /// text (`shard {i} ({addr}): {what}`) is unchanged, so wire `err`
    /// lines stay byte-identical.
    fn named(&self, what: impl std::fmt::Display) -> ModelError {
        ModelError::Remote(RemoteDetail::shard(
            self.index,
            self.addr(),
            what.to_string(),
        ))
    }

    fn degraded(&self, attempts: &[String]) -> ModelError {
        ModelError::Degraded {
            shard: self.index,
            addr: self.addr().to_string(),
            detail: if attempts.is_empty() {
                "no usable replica".to_string()
            } else {
                attempts.join("; ")
            },
        }
    }

    /// Dials replica `idx` fresh and re-runs the shard-manifest handshake:
    /// the node must answer `ping`, report the manifest cardinality, and —
    /// once the cluster schema is known — serve that exact schema. Returns
    /// the verified connection plus the served schema (for connect-time
    /// cross-shard comparison).
    fn dial_verified(&self, idx: usize) -> std::result::Result<(Client, Schema), DialFailure> {
        let addr = self.replicas[idx].addr.as_str();
        let mut client = Client::connect_with(addr, self.config.client_config())
            .map_err(|e| DialFailure::Transport(format!("cannot connect: {e}")))?;
        client.ping().map_err(|e| match e {
            ClientError::Io(io) => DialFailure::Transport(format!("transport failure: {io}")),
            ClientError::Model(m) => DialFailure::Transport(format!("handshake failure: {m}")),
        })?;
        let served_schema = client
            .schema()
            .map_err(|e| DialFailure::Transport(format!("schema handshake failure: {e}")))?
            .clone();
        let served_n = client
            .served_n()
            .map_err(|e| DialFailure::Transport(format!("schema handshake failure: {e}")))?
            .ok_or_else(|| {
                DialFailure::Transport(
                    "server did not report its cardinality (pre-handshake build?)".to_string(),
                )
            })?;
        if self.dynamic {
            // A live node's cardinality grows as deltas fold: adopt the
            // served value, and treat growth like a blob swap for the
            // gather cache (answers merged under the old n are stale).
            let prev = self.n.swap(served_n, Ordering::AcqRel);
            if prev != 0 && prev != served_n {
                self.generation.fetch_add(1, Ordering::Release);
            }
        } else if served_n != self.n() {
            return Err(DialFailure::WrongBlob(format!(
                "serves n = {served_n} but the manifest declares n = {}",
                self.n()
            )));
        }
        if let Some(expected) = self.expected_schema.get() {
            if expected != &served_schema {
                return Err(DialFailure::WrongBlob(
                    "served schema differs from the cluster's (changed blob?)".to_string(),
                ));
            }
        }
        Ok((client, served_schema))
    }

    /// Picks the next replica to try: rotation from `start`, skipping
    /// evicted replicas and open breakers. When every live replica's
    /// breaker is open, returns the one whose cooldown expires soonest —
    /// the probation probe that lets a healed outage close breakers again.
    fn choose(&self, start: usize, now: Instant) -> Option<usize> {
        let len = self.replicas.len();
        let mut soonest_open: Option<(usize, Instant)> = None;
        for off in 0..len {
            let idx = (start + off) % len;
            let health = self.replicas[idx].health.lock().expect("replica health");
            if health.evicted {
                continue;
            }
            match health.open_until {
                Some(t) if t > now => {
                    if soonest_open.is_none_or(|(_, best)| t < best) {
                        soonest_open = Some((idx, t));
                    }
                }
                _ => return Some(idx),
            }
        }
        soonest_open.map(|(idx, _)| idx)
    }

    /// Checks a verified connection out of replica `idx`'s pool, dialing
    /// (and re-handshaking) a fresh one when the pool is empty.
    fn checkout(&self, idx: usize) -> std::result::Result<Client, DialFailure> {
        if let Some(client) = self.replicas[idx].conns.lock().expect("conn pool").pop() {
            return Ok(client);
        }
        self.dial_verified(idx).map(|(client, _)| client)
    }

    /// Runs `f` against a pooled connection of a live replica, failing
    /// over per the module-level classification. A connection involved in
    /// any failure is dropped, so the pool never caches a broken or
    /// desynchronized transport. Success resets the replica's breaker and
    /// makes it the preferred replica for subsequent probes.
    fn with_conn<R>(&self, f: impl Fn(&mut Client) -> ClientResultAlias<R>) -> Result<R> {
        let len = self.replicas.len();
        if len == 0 {
            return Err(self.degraded(&["manifest lists no replica".to_string()]));
        }
        let mut attempts: Vec<String> = Vec::new();
        let mut tried = vec![false; len];
        let mut backoff = self.config.backoff_base;
        let mut start = self.preferred.load(Ordering::Relaxed) % len;
        for _ in 0..self.config.max_attempts(len) {
            let Some(idx) = self.choose(start, Instant::now()) else {
                attempts.push("every replica evicted (changed blob)".to_string());
                break;
            };
            // Failing over to an untried replica is immediate; once the
            // rotation wraps, sleep the capped exponential backoff so a
            // struggling cluster is not hammered.
            if tried[idx] && !backoff.is_zero() {
                std::thread::sleep(backoff);
                backoff = backoff.saturating_mul(2).min(self.config.backoff_cap);
            }
            tried[idx] = true;
            let replica = &self.replicas[idx];
            let mut client = match self.checkout(idx) {
                Ok(client) => client,
                Err(DialFailure::WrongBlob(detail)) => {
                    self.evict_replica(idx);
                    attempts.push(format!("{}: evicted: {detail}", replica.addr));
                    start = (idx + 1) % len;
                    continue;
                }
                Err(DialFailure::Transport(detail)) => {
                    replica
                        .health
                        .lock()
                        .expect("replica health")
                        .record_failure(&self.config);
                    attempts.push(format!("{}: {detail}", replica.addr));
                    start = (idx + 1) % len;
                    continue;
                }
            };
            match f(&mut client) {
                Ok(out) => {
                    replica
                        .health
                        .lock()
                        .expect("replica health")
                        .record_success();
                    self.preferred.store(idx, Ordering::Relaxed);
                    replica.put_back(client);
                    return Ok(out);
                }
                // Load shedding: the serving layer answered a typed busy
                // line (and closed the session) — transient, back off and
                // retry without opening the breaker: the node is alive.
                Err(ClientError::Model(ModelError::Busy(msg))) => {
                    attempts.push(format!("{}: busy: {msg}", replica.addr));
                    start = (idx + 1) % len;
                }
                // Protocol failure: the response frame did not decode
                // (corrupted or truncated stream). The transport is
                // desynchronized — drop it and fail over.
                Err(ClientError::Model(ModelError::Parse { message, .. })) => {
                    replica
                        .health
                        .lock()
                        .expect("replica health")
                        .record_failure(&self.config);
                    attempts.push(format!("{}: protocol failure: {message}", replica.addr));
                    start = (idx + 1) % len;
                }
                // Deterministic server error: every replica would compute
                // the same error, so fail the call immediately — a
                // server-reported error line is never re-sent.
                Err(ClientError::Model(other)) => {
                    return Err(self.named(other));
                }
                // Transport death or deadline expiry: fail over.
                Err(ClientError::Io(io)) => {
                    replica
                        .health
                        .lock()
                        .expect("replica health")
                        .record_failure(&self.config);
                    attempts.push(format!("{}: transport failure: {io}", replica.addr));
                    start = (idx + 1) % len;
                }
            }
        }
        Err(self.degraded(&attempts))
    }

    /// Background re-verification of replica `idx`: a fresh dial plus
    /// handshake. Success warms the pool and (probation) closes the
    /// breaker; a changed blob evicts; a dead node counts toward the
    /// breaker so query-path probes skip it sooner.
    fn rehandshake_replica(&self, idx: usize) {
        if self.replicas[idx].is_evicted() {
            return;
        }
        match self.dial_verified(idx) {
            Ok((client, _)) => {
                let replica = &self.replicas[idx];
                replica
                    .health
                    .lock()
                    .expect("replica health")
                    .record_success();
                replica.put_back(client);
            }
            Err(DialFailure::WrongBlob(_)) => self.evict_replica(idx),
            Err(DialFailure::Transport(_)) => self.replicas[idx]
                .health
                .lock()
                .expect("replica health")
                .record_failure(&self.config),
        }
    }

    /// One probe line → one response line, with shape checking of the
    /// response variant.
    fn call(&self, probe: &ProbeRequest) -> Result<ProbeResponse> {
        self.with_conn(|client| client.probe(probe))
    }

    fn shape_error(&self, got: &ProbeResponse) -> ModelError {
        self.named(format!(
            "unexpected probe response shape: {}",
            got.encode()
                .split_whitespace()
                .take(2)
                .collect::<Vec<_>>()
                .join(" ")
        ))
    }
}

type ClientResultAlias<T> = std::result::Result<T, ClientError>;

/// Candidate values per `CountRestricted` chunk (each value costs ≤ 11
/// bytes on the wire, plus one base mask per chunk) — keeps every probe
/// line well under the serving layer's `MAX_LINE_BYTES` (1 MiB).
const PROBE_VALUE_CHUNK: usize = 8192;

/// Sample indices per `SampleAt` chunk: bounds the request line (≤ 21
/// bytes per index) against the line cap.
const PROBE_INDEX_CHUNK: usize = 8192;

/// Masks per `ProbabilityMany`/`CountMany` chunk. A mask is the heavy
/// token (it spells out every bucket weight of every constrained
/// attribute), so the chunk is small: 32 masks keep a batch line under the
/// line cap even for domains in the thousands of buckets per attribute,
/// while still amortizing the per-chunk fused slab traversal shard-side
/// (2 × `MAX_FUSED_LANES`).
const PROBE_MASK_CHUNK: usize = 32;

impl ShardProbe for RemoteShard {
    /// Probe state lives in the per-replica connection pools, not in a
    /// per-call scratch.
    type Scratch = ();

    fn shard_n(&self) -> u64 {
        self.n()
    }

    fn make_probe_scratch(&self) {}

    fn probe_probability(&self, mask: &Mask, _s: &mut ()) -> Result<f64> {
        match self.call(&ProbeRequest::Probability { mask: mask.clone() })? {
            ProbeResponse::Probability(p) => Ok(p),
            other => Err(self.shape_error(&other)),
        }
    }

    fn probe_count(&self, mask: &Mask, _s: &mut ()) -> Result<Estimate> {
        match self.call(&ProbeRequest::Count { mask: mask.clone() })? {
            ProbeResponse::Estimate(e) => Ok(e),
            other => Err(self.shape_error(&other)),
        }
    }

    /// The fused-batch probability probe: the mask batch rides a few
    /// pipelined `probm` lines (chunked against the line cap) and the shard
    /// answers each chunk through its fused kernel — bitwise-identical to
    /// one `prob` probe per mask, at a fraction of the wire rounds.
    fn probe_probability_many(&self, masks: &[Mask], _s: &mut ()) -> Result<Vec<f64>> {
        if masks.is_empty() {
            return Ok(Vec::new());
        }
        let probes: Vec<ProbeRequest> = masks
            .chunks(PROBE_MASK_CHUNK)
            .map(|chunk| ProbeRequest::ProbabilityMany {
                masks: chunk.to_vec(),
            })
            .collect();
        let responses = self.with_conn(|client| client.probe_pipelined(&probes))?;
        let mut out = Vec::with_capacity(masks.len());
        for resp in responses {
            match resp {
                ProbeResponse::Probabilities(ps) => out.extend(ps),
                other => return Err(self.shape_error(&other)),
            }
        }
        if out.len() != masks.len() {
            return Err(self.named(format!(
                "answered {} probabilities for {} masks",
                out.len(),
                masks.len()
            )));
        }
        Ok(out)
    }

    /// The fused-batch COUNT probe (`countm` lines); same contract as
    /// [`RemoteShard::probe_probability_many`].
    fn probe_count_many(&self, masks: &[Mask], _s: &mut ()) -> Result<Vec<Estimate>> {
        if masks.is_empty() {
            return Ok(Vec::new());
        }
        let probes: Vec<ProbeRequest> = masks
            .chunks(PROBE_MASK_CHUNK)
            .map(|chunk| ProbeRequest::CountMany {
                masks: chunk.to_vec(),
            })
            .collect();
        let responses = self.with_conn(|client| client.probe_pipelined(&probes))?;
        let mut out = Vec::with_capacity(masks.len());
        for resp in responses {
            match resp {
                ProbeResponse::Estimates(list) => out.extend(list),
                other => return Err(self.shape_error(&other)),
            }
        }
        if out.len() != masks.len() {
            return Err(self.named(format!(
                "answered {} estimates for {} masks",
                out.len(),
                masks.len()
            )));
        }
        Ok(out)
    }

    /// The compact top-k re-probe: one base mask + the candidate list per
    /// pipelined chunk — wire cost `O(mask + candidates)`, so a large
    /// candidate union cannot outgrow the serving layer's line cap.
    fn probe_count_restricted(
        &self,
        mask: &Mask,
        attr: AttrId,
        values: &[u32],
        _n_attr: usize,
        _s: &mut (),
    ) -> Result<Vec<Estimate>> {
        if values.is_empty() {
            return Ok(Vec::new());
        }
        let probes: Vec<ProbeRequest> = values
            .chunks(PROBE_VALUE_CHUNK)
            .map(|chunk| ProbeRequest::CountRestricted {
                mask: mask.clone(),
                attr,
                values: chunk.to_vec(),
            })
            .collect();
        let responses = self.with_conn(|client| client.probe_pipelined(&probes))?;
        let mut out = Vec::with_capacity(values.len());
        for resp in responses {
            match resp {
                ProbeResponse::Estimates(list) => out.extend(list),
                other => return Err(self.shape_error(&other)),
            }
        }
        if out.len() != values.len() {
            return Err(self.named(format!(
                "answered {} estimates for {} candidates",
                out.len(),
                values.len()
            )));
        }
        Ok(out)
    }

    fn probe_sum(
        &self,
        base: &Mask,
        attr: AttrId,
        values: &[f64],
        _s: &mut (),
    ) -> Result<Estimate> {
        let probe = ProbeRequest::Sum {
            mask: base.clone(),
            attr,
            values: values.to_vec(),
        };
        match self.call(&probe)? {
            ProbeResponse::Estimate(e) => Ok(e),
            other => Err(self.shape_error(&other)),
        }
    }

    fn probe_group_by(&self, mask: &Mask, attr: AttrId, _s: &mut ()) -> Result<Vec<Estimate>> {
        let probe = ProbeRequest::GroupBy {
            mask: mask.clone(),
            attr,
        };
        match self.call(&probe)? {
            ProbeResponse::Groups(groups) => Ok(groups),
            other => Err(self.shape_error(&other)),
        }
    }

    fn probe_top_k(
        &self,
        mask: &Mask,
        attr: AttrId,
        k: usize,
        _s: &mut (),
    ) -> Result<Vec<(u32, Estimate)>> {
        let probe = ProbeRequest::TopK {
            mask: mask.clone(),
            attr,
            k,
        };
        match self.call(&probe)? {
            ProbeResponse::Ranked(ranked) => Ok(ranked),
            other => Err(self.shape_error(&other)),
        }
    }

    /// One pipelined wire round for this shard's whole stratum, chunked so
    /// neither an index line nor a row-response line outgrows the line cap.
    /// A zero-quota stratum returns without touching the connection pool —
    /// a shard owed no rows cannot fail (or slow down) the draw.
    fn probe_sample_at(
        &self,
        k: usize,
        seed: u64,
        indices: &[u64],
        _s: &mut (),
    ) -> Result<Vec<Vec<u32>>> {
        if indices.is_empty() {
            return Ok(Vec::new());
        }
        let probes: Vec<ProbeRequest> = indices
            .chunks(PROBE_INDEX_CHUNK)
            .map(|chunk| ProbeRequest::SampleAt {
                k,
                seed,
                indices: chunk.to_vec(),
            })
            .collect();
        let responses = self.with_conn(|client| client.probe_pipelined(&probes))?;
        let mut out = Vec::with_capacity(indices.len());
        for resp in responses {
            match resp {
                ProbeResponse::Rows { rows, .. } => out.extend(rows),
                other => return Err(self.shape_error(&other)),
            }
        }
        if out.len() != indices.len() {
            return Err(self.named(format!(
                "answered {} rows for {} requested tuples",
                out.len(),
                indices.len()
            )));
        }
        Ok(out)
    }
}

/// The background re-handshake thread's handle; dropping it stops and
/// joins the thread.
#[derive(Debug)]
struct Rehandshake {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Drop for Rehandshake {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// A sharded summary whose shards live on other nodes: the remote
/// scatter/gather backend. See the module docs for the placement model,
/// the bitwise-parity guarantee, and the failover semantics.
#[derive(Debug)]
pub struct RemoteShardedSummary {
    schema: Schema,
    domain_sizes: Vec<usize>,
    n: u64,
    /// `n_s / n` per shard — computed with the same arithmetic as the
    /// local backend so mixture probabilities match bit for bit.
    weights: Vec<f64>,
    shards: Arc<Vec<RemoteShard>>,
    rehandshake: Option<Rehandshake>,
    /// Optional gather-side answer cache (see
    /// [`RemoteShardedSummary::enable_probe_cache`]).
    cache: Option<Arc<GatherCache>>,
}

impl RemoteShardedSummary {
    /// [`RemoteShardedSummary::connect_with`] under the default
    /// [`FailoverConfig`].
    pub fn connect(manifest: &[ClusterShard]) -> Result<Self> {
        Self::connect_with(manifest, FailoverConfig::default())
    }

    /// Connects to every shard of a cluster manifest and performs the
    /// shard-manifest handshake. Per shard, replicas are tried in manifest
    /// order until one passes: it must answer `ping`, serve a schema
    /// identical to the first connected shard's, and report the
    /// cardinality the manifest declares. A replica serving the wrong
    /// blob is evicted; an unreachable replica is merely marked failing —
    /// the cluster connects as long as **some** replica of every shard
    /// verifies. A shard whose whole replica set fails surfaces as
    /// [`ModelError::Degraded`].
    pub fn connect_with(manifest: &[ClusterShard], config: FailoverConfig) -> Result<Self> {
        if manifest.is_empty() {
            return Err(ModelError::Remote(RemoteDetail::message(
                "cluster manifest has no shards",
            )));
        }
        let mut shards = Vec::with_capacity(manifest.len());
        let mut schema: Option<Schema> = None;
        for entry in manifest {
            let shard = RemoteShard::new(entry, config.clone());
            if let Some(first) = &schema {
                // Later shards verify against the cluster schema inside
                // the dial itself (wrong schema ⇒ WrongBlob ⇒ eviction).
                let _ = shard.expected_schema.set(first.clone());
            }
            let mut attempts: Vec<String> = Vec::new();
            let mut connected = false;
            for idx in 0..shard.replicas.len() {
                match shard.dial_verified(idx) {
                    Ok((client, served_schema)) => {
                        if schema.is_none() {
                            schema = Some(served_schema);
                        }
                        shard.preferred.store(idx, Ordering::Relaxed);
                        shard.replicas[idx]
                            .health
                            .lock()
                            .expect("replica health")
                            .record_success();
                        // The handshake connection seeds the pool.
                        shard.replicas[idx].put_back(client);
                        connected = true;
                        break;
                    }
                    Err(DialFailure::WrongBlob(detail)) => {
                        shard.evict_replica(idx);
                        attempts.push(format!("{}: evicted: {detail}", shard.replicas[idx].addr));
                    }
                    Err(DialFailure::Transport(detail)) => {
                        shard.replicas[idx]
                            .health
                            .lock()
                            .expect("replica health")
                            .record_failure(&config);
                        attempts.push(format!("{}: {detail}", shard.replicas[idx].addr));
                    }
                }
            }
            if !connected {
                return Err(shard.degraded(&attempts));
            }
            shards.push(shard);
        }
        let schema = schema.expect("at least one shard connected");
        // Shard 0 (whichever connected first) seeded the cluster schema
        // after its own dial; arm its verifier too.
        for shard in &shards {
            let _ = shard.expected_schema.set(schema.clone());
        }
        let n: u64 = shards.iter().map(RemoteShard::n).sum();
        if n == 0 {
            return Err(ModelError::Remote(RemoteDetail::message(
                "cluster serves an empty relation",
            )));
        }
        let weights = shards.iter().map(|s| s.n() as f64 / n as f64).collect();
        let domain_sizes = schema.domain_sizes();
        Ok(RemoteShardedSummary {
            schema,
            domain_sizes,
            n,
            weights,
            shards: Arc::new(shards),
            rehandshake: None,
            cache: None,
        })
    }

    /// Starts the background re-handshake thread: every `interval`, each
    /// non-evicted replica is re-dialed and re-verified. A replica caught
    /// serving a changed blob is evicted before the query path can reach
    /// it; a dead replica's breaker opens early; a healed replica's
    /// breaker closes (probation). Idempotent; the thread stops when the
    /// summary is dropped.
    pub fn start_rehandshake(&mut self, interval: Duration) {
        if self.rehandshake.is_some() {
            return;
        }
        let shards = Arc::clone(&self.shards);
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let tick = Duration::from_millis(20).min(interval.max(Duration::from_millis(1)));
            let mut since_sweep = Duration::ZERO;
            loop {
                if thread_stop.load(Ordering::SeqCst) {
                    break;
                }
                std::thread::sleep(tick);
                since_sweep += tick;
                if since_sweep < interval {
                    continue;
                }
                since_sweep = Duration::ZERO;
                for shard in shards.iter() {
                    for idx in 0..shard.replicas.len() {
                        if thread_stop.load(Ordering::SeqCst) {
                            return;
                        }
                        shard.rehandshake_replica(idx);
                    }
                }
            }
        });
        self.rehandshake = Some(Rehandshake {
            stop,
            handle: Some(handle),
        });
    }

    /// Total relation cardinality `n` (sum of shard cardinalities).
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The served relation's schema (identical on every shard, verified
    /// during the handshake).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Puts a gather-side answer cache (bounded to `entries` responses)
    /// in front of the remote shards: repeated probes are answered
    /// without a wire round trip, concurrent identical probes coalesce
    /// into one round trip, and fully-cached queries skip the fan-out
    /// pool entirely. Keys mix in each shard's blob generation, so the
    /// wrong-blob eviction that follows a shard swap (detected by the
    /// re-handshake or by any probe) instantly orphans every cached
    /// answer from the old blob — a stale answer can never be served.
    /// Answers stay bitwise-identical to the uncached wire paths.
    pub fn enable_probe_cache(&mut self, entries: usize) {
        let ids = self
            .shards
            .iter()
            .map(|s| {
                ShardCacheId::with_generation(
                    scatter::shard_identity_token(s.index, s.n(), &self.schema),
                    Arc::clone(&s.generation),
                )
            })
            .collect();
        self.cache = Some(Arc::new(GatherCache::new(entries, ids)));
    }

    /// The gather-side cache, when one is enabled.
    pub fn probe_cache(&self) -> Option<&Arc<GatherCache>> {
        self.cache.as_ref()
    }

    /// The remote shards, in shard order.
    pub fn shards(&self) -> &[RemoteShard] {
        &self.shards
    }

    /// A shareable handle to the shard set — the gateway's control loop
    /// keeps one to report per-replica health after [`crate::serve_with`]
    /// has consumed the summary.
    pub fn shard_set(&self) -> Arc<Vec<RemoteShard>> {
        Arc::clone(&self.shards)
    }

    /// Number of shards in the cluster.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn shard_ns(&self) -> Vec<u64> {
        self.shards.iter().map(RemoteShard::n).collect()
    }

    /// The shard that owns the cluster's live delta: shard 0 by
    /// convention (clusters with a live node place it first, typically as
    /// a dynamic `n = 0` manifest entry). Appends route here; the other
    /// shards stay immutable base segments.
    pub fn delta_owner(&self) -> &RemoteShard {
        self.shards
            .first()
            .expect("manifest has at least one shard")
    }
}

impl SummaryBackend for RemoteShardedSummary {
    /// One (empty) probe scratch per shard — remote probe state is the
    /// connection pool, but the scatter fan-out still wants a slot each.
    type Scratch = Vec<()>;
    /// The stratified assignment plus lazily fetched per-shard strata —
    /// each contributing shard costs one pipelined round, on first touch.
    type SamplePlan = RemoteSamplePlan;

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn n(&self) -> u64 {
        self.n
    }

    fn domain_sizes(&self) -> &[usize] {
        &self.domain_sizes
    }

    fn make_scratch(&self) -> Vec<()> {
        vec![(); self.shards.len()]
    }

    /// Mixture probability `Σ (n_s / n) · p_s`, merged by the shared
    /// [`scatter`] layer. With a probe cache, a fully-cached mask is
    /// folded serially without touching the wire or the fan-out pool;
    /// otherwise the shards answer behind [`scatter::CachedProbe`], so
    /// repeats and concurrent duplicates cost one round trip.
    fn probability_under_mask(&self, mask: &Mask, scratch: &mut Vec<()>) -> Result<f64> {
        let Some(cache) = &self.cache else {
            return scatter::mixture_probability(&self.shards, &self.weights, mask, scratch);
        };
        if let Some(p) = cache.peek_probability(mask, &self.weights) {
            return Ok(p);
        }
        scatter::mixture_probability(&cache.probes(&self.shards), &self.weights, mask, scratch)
    }

    fn count_under_mask(&self, mask: &Mask, scratch: &mut Vec<()>) -> Result<Estimate> {
        let Some(cache) = &self.cache else {
            return scatter::merged_count(&self.shards, mask, scratch);
        };
        if let Some(count) = cache.peek_count(mask) {
            return Ok(count);
        }
        scatter::merged_count(&cache.probes(&self.shards), mask, scratch)
    }

    /// Batched mixture probability over the wire: every shard answers the
    /// whole mask batch in a few pipelined lines, then the standard
    /// shard-order mixture fold runs per mask. With a probe cache, only
    /// the missing masks of the batch cross the wire.
    fn probabilities_under_masks(&self, masks: &[Mask], scratch: &mut Vec<()>) -> Result<Vec<f64>> {
        match &self.cache {
            Some(cache) => scatter::mixture_probability_many(
                &cache.probes(&self.shards),
                &self.weights,
                masks,
                scratch,
            ),
            None => scatter::mixture_probability_many(&self.shards, &self.weights, masks, scratch),
        }
    }

    fn counts_under_masks(&self, masks: &[Mask], scratch: &mut Vec<()>) -> Result<Vec<Estimate>> {
        match &self.cache {
            Some(cache) => scatter::merged_count_many(&cache.probes(&self.shards), masks, scratch),
            None => scatter::merged_count_many(&self.shards, masks, scratch),
        }
    }

    fn sum_under_mask(
        &self,
        base: &Mask,
        attr: AttrId,
        values: &[f64],
        scratch: &mut Vec<()>,
    ) -> Result<Estimate> {
        let Some(cache) = &self.cache else {
            return scatter::merged_sum(&self.shards, base, attr, values, scratch);
        };
        if let Some(sum) = cache.peek_sum(base, attr, values) {
            return Ok(sum);
        }
        scatter::merged_sum(&cache.probes(&self.shards), base, attr, values, scratch)
    }

    fn group_by_under_mask(
        &self,
        mask: &Mask,
        attr: AttrId,
        scratch: &mut Vec<()>,
    ) -> Result<Vec<Estimate>> {
        let Some(cache) = &self.cache else {
            return scatter::merged_group_by(&self.shards, mask, attr, scratch);
        };
        if let Some(cells) = cache.peek_group_by(mask, attr) {
            return Ok(cells);
        }
        scatter::merged_group_by(&cache.probes(&self.shards), mask, attr, scratch)
    }

    fn top_k_under_mask(
        &self,
        mask: &Mask,
        attr: AttrId,
        k: usize,
        scratch: &mut Vec<()>,
    ) -> Result<Vec<(u32, Estimate)>> {
        let n_attr = self.domain_sizes[attr.0];
        match &self.cache {
            Some(cache) => {
                scatter::merged_top_k(&cache.probes(&self.shards), mask, attr, k, n_attr, scratch)
            }
            None => scatter::merged_top_k(&self.shards, mask, attr, k, n_attr, scratch),
        }
    }

    /// Computes the stratified shard assignment (the same largest-remainder
    /// plan the local backend computes) without touching the wire: strata
    /// are fetched lazily, on first touch, by [`Self::sample_tuple`]. A
    /// full `sample_rows` draw still costs one pipelined round per
    /// contributing shard, while a sparse `SampleAt` probe served by a
    /// gateway fetches only the strata it actually reads — a few-byte probe
    /// line can no longer demand the whole `k`-row draw.
    fn plan_samples(&self, k: usize, seed: u64) -> Result<RemoteSamplePlan> {
        let assignment = scatter::sample_assignment(&self.shard_ns(), k);
        let index_lists = scatter::shard_index_lists(&assignment, self.shards.len());
        let strata = (0..self.shards.len()).map(|_| Mutex::new(None)).collect();
        Ok(RemoteSamplePlan {
            k,
            seed,
            assignment,
            index_lists,
            strata,
        })
    }

    /// Copies tuple `index` out of its shard's stratum, fetching the
    /// stratum with one pipelined `SampleAt` probe on first touch. Tuple
    /// streams are keyed on `(seed, global index)` on the shard side, so
    /// the fetched rows are bitwise the rows the local backend would draw.
    fn sample_tuple(
        &self,
        plan: &RemoteSamplePlan,
        index: usize,
        _seed: u64,
        row: &mut [u32],
        _scratch: &mut Vec<()>,
    ) -> Result<()> {
        let shard_idx = *plan
            .assignment
            .get(index)
            .ok_or(ModelError::ShapeMismatch)? as usize;
        let indices = &plan.index_lists[shard_idx];
        // Index lists are built in ascending global order, so the row's
        // position within the stratum is found by binary search.
        let pos = indices
            .binary_search(&(index as u64))
            .map_err(|_| ModelError::ShapeMismatch)?;
        let mut stratum = plan.strata[shard_idx].lock().expect("sample stratum lock");
        if stratum.is_none() {
            let rows =
                self.shards[shard_idx].probe_sample_at(plan.k, plan.seed, indices, &mut ())?;
            for fetched in &rows {
                if fetched.len() != row.len() {
                    return Err(self.shards[shard_idx].named(format!(
                        "answered a row of arity {} (schema arity {})",
                        fetched.len(),
                        row.len()
                    )));
                }
            }
            *stratum = Some(rows);
        }
        row.copy_from_slice(&stratum.as_ref().expect("stratum fetched")[pos]);
        Ok(())
    }

    fn cache_stats(&self) -> Option<CacheStatsSnapshot> {
        self.cache.as_ref().map(|cache| cache.snapshot())
    }

    /// The delta owner's last *observed* epoch. `0` until an append or
    /// [`SummaryBackend::ingest_stats`] reply has been seen — the gateway
    /// learns epochs from replies, it does not poll.
    fn epoch(&self) -> u64 {
        self.delta_owner().last_seen_epoch()
    }

    /// Routes the append to the cluster's delta owner (shard 0 by
    /// convention — the node started in live mode). The idempotency token
    /// is **pinned before** the failover loop runs: if the first attempt
    /// dies mid-flight and the gatherer retries on another replica (or a
    /// fresh connection), the retry carries the same token and the
    /// owner's token window absorbs the replay — ambiguous transport
    /// failures cannot double-ingest. The reply's epoch feeds
    /// [`RemoteShard::note_epoch`], invalidating gather-side cached
    /// answers the moment a fold becomes visible.
    fn append_rows(&self, rows: &[Vec<u32>], token: Option<&str>) -> Result<AppendOutcome> {
        let owner = self.delta_owner();
        let pinned = match token {
            Some(t) => t.to_string(),
            None => generate_append_token(),
        };
        let outcome = owner.with_conn(|client| client.append(rows, Some(&pinned)))?;
        owner.note_epoch(outcome.epoch);
        Ok(outcome)
    }

    /// Fetches the delta owner's ingest counters over the wire (`None`
    /// when the owner is unreachable or serves an immutable summary).
    /// Observing the epoch doubles as cache invalidation — a poll after a
    /// background fold orphans stale gather-side answers.
    fn ingest_stats(&self) -> Option<IngestStatsSnapshot> {
        let owner = self.delta_owner();
        let stats = owner
            .with_conn(|client| client.ingest_stats())
            .ok()
            .flatten()?;
        owner.note_epoch(stats.epoch);
        Some(stats)
    }
}

/// The per-draw sample plan of the remote backend: the stratified shard
/// assignment plus lazily fetched per-shard strata (see
/// [`SummaryBackend::plan_samples`] on [`RemoteShardedSummary`]).
#[derive(Debug)]
pub struct RemoteSamplePlan {
    k: usize,
    seed: u64,
    /// Shard per global tuple index.
    assignment: Vec<u32>,
    /// Ascending global indices per shard; positions align with the
    /// fetched stratum rows.
    index_lists: Vec<Vec<u64>>,
    /// Fetched rows per shard, populated on first touch.
    strata: Vec<Mutex<Option<Vec<Vec<u32>>>>>,
}
