//! Shard-per-node placement: [`RemoteShardedSummary`], a
//! [`SummaryBackend`] whose per-shard fan-out goes over the wire.
//!
//! A [`ShardedSummary`](entropydb_core::sharded::ShardedSummary) fans
//! queries out across in-process shard models through the
//! shard-source-agnostic merge layer (`entropydb_core::scatter`).
//! [`RemoteShardedSummary`] keeps the *merge side of that layer unchanged*
//! and swaps the probe side: each shard is an `entropydb-serve` instance
//! reached over TCP, addressed by a cluster manifest
//! ([`ClusterShard`]), and every per-shard primitive becomes a mask-level
//! probe line (`entropydb_core::probe`). Because the gatherer's merge
//! arithmetic, stratified sampling streams, and candidate re-probe logic
//! are the very same code paths the local backend runs — and because the
//! probe wire encoding round-trips floats bit-exactly — remote answers are
//! **bitwise identical** to a local `ShardedSummary` over the same shard
//! models, on every `QueryRequest` variant.
//!
//! Connections are pooled per shard and reused across queries; a pool
//! grows to the gatherer's probe concurrency and then stays fixed. On a
//! broken transport the underlying [`Client`] reconnects and retries once;
//! if the shard stays unreachable the failure surfaces as
//! [`ModelError::Remote`] **naming the degraded shard** (index and
//! address), kept per-request by the engine's batch path so one dead node
//! cannot poison a pipelined batch.
//!
//! Connecting performs the shard-manifest handshake: each node's served
//! schema and cardinality (the `n` line of the schema block) are fetched
//! and verified against the manifest before any query fans out, so a node
//! serving the wrong blob is rejected up front.

use crate::client::{Client, ClientError};
use entropydb_core::assignment::Mask;
use entropydb_core::engine::SummaryBackend;
use entropydb_core::error::{ModelError, Result};
use entropydb_core::probe::{ProbeRequest, ProbeResponse};
use entropydb_core::query::Estimate;
use entropydb_core::scatter::{self, ShardProbe};
use entropydb_core::serialize::ClusterShard;
use entropydb_storage::{AttrId, Schema};
use std::sync::Mutex;

/// One remote shard: the manifest entry plus a pool of reusable probe
/// connections to its `entropydb-serve` instance.
#[derive(Debug)]
pub struct RemoteShard {
    index: usize,
    addr: String,
    n: u64,
    conns: Mutex<Vec<Client>>,
}

impl RemoteShard {
    /// Shard index within the cluster.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The shard server's address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Shard cardinality `n_s` (verified during the handshake).
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Number of idle pooled connections (introspection for tests).
    pub fn idle_conns(&self) -> usize {
        self.conns.lock().expect("conn pool").len()
    }

    /// Decorates any failure with the degraded shard's identity.
    fn named(&self, what: impl std::fmt::Display) -> ModelError {
        ModelError::Remote(format!("shard {} ({}): {what}", self.index, self.addr))
    }

    fn named_client_err(&self, e: ClientError) -> ModelError {
        match e {
            ClientError::Model(ModelError::Remote(msg)) => self.named(msg),
            ClientError::Model(other) => self.named(other),
            ClientError::Io(io) => self.named(format!("transport failure: {io}")),
        }
    }

    /// Checks a connection out of the pool, dialing a fresh one when the
    /// pool is empty (first use, or probe concurrency above the current
    /// pool size).
    fn checkout(&self) -> Result<Client> {
        if let Some(client) = self.conns.lock().expect("conn pool").pop() {
            return Ok(client);
        }
        Client::connect(self.addr.as_str()).map_err(|e| self.named(format!("cannot connect: {e}")))
    }

    fn put_back(&self, client: Client) {
        self.conns.lock().expect("conn pool").push(client);
    }

    /// Runs `f` against a pooled connection. The connection returns to the
    /// pool only on success — a connection involved in any failure is
    /// dropped, so the pool never caches a broken transport.
    fn with_conn<R>(&self, f: impl FnOnce(&mut Client) -> ClientResultAlias<R>) -> Result<R> {
        let mut client = self.checkout()?;
        match f(&mut client) {
            Ok(out) => {
                self.put_back(client);
                Ok(out)
            }
            Err(e) => Err(self.named_client_err(e)),
        }
    }

    /// One probe line → one response line, with shape checking of the
    /// response variant.
    fn call(&self, probe: &ProbeRequest) -> Result<ProbeResponse> {
        self.with_conn(|client| client.probe(probe))
    }

    fn shape_error(&self, got: &ProbeResponse) -> ModelError {
        self.named(format!(
            "unexpected probe response shape: {}",
            got.encode()
                .split_whitespace()
                .take(2)
                .collect::<Vec<_>>()
                .join(" ")
        ))
    }
}

type ClientResultAlias<T> = std::result::Result<T, ClientError>;

/// Candidate values per `CountRestricted` chunk (each value costs ≤ 11
/// bytes on the wire, plus one base mask per chunk) — keeps every probe
/// line well under the serving layer's `MAX_LINE_BYTES` (1 MiB).
const PROBE_VALUE_CHUNK: usize = 8192;

/// Sample indices per `SampleAt` chunk: bounds the request line (≤ 21
/// bytes per index) against the line cap.
const PROBE_INDEX_CHUNK: usize = 8192;

/// Masks per `ProbabilityMany`/`CountMany` chunk. A mask is the heavy
/// token (it spells out every bucket weight of every constrained
/// attribute), so the chunk is small: 32 masks keep a batch line under the
/// line cap even for domains in the thousands of buckets per attribute,
/// while still amortizing the per-chunk fused slab traversal shard-side
/// (2 × `MAX_FUSED_LANES`).
const PROBE_MASK_CHUNK: usize = 32;

impl ShardProbe for RemoteShard {
    /// Probe state lives in the per-shard connection pool, not in a
    /// per-call scratch.
    type Scratch = ();

    fn shard_n(&self) -> u64 {
        self.n
    }

    fn make_probe_scratch(&self) {}

    fn probe_probability(&self, mask: &Mask, _s: &mut ()) -> Result<f64> {
        match self.call(&ProbeRequest::Probability { mask: mask.clone() })? {
            ProbeResponse::Probability(p) => Ok(p),
            other => Err(self.shape_error(&other)),
        }
    }

    fn probe_count(&self, mask: &Mask, _s: &mut ()) -> Result<Estimate> {
        match self.call(&ProbeRequest::Count { mask: mask.clone() })? {
            ProbeResponse::Estimate(e) => Ok(e),
            other => Err(self.shape_error(&other)),
        }
    }

    /// The fused-batch probability probe: the mask batch rides a few
    /// pipelined `probm` lines (chunked against the line cap) and the shard
    /// answers each chunk through its fused kernel — bitwise-identical to
    /// one `prob` probe per mask, at a fraction of the wire rounds.
    fn probe_probability_many(&self, masks: &[Mask], _s: &mut ()) -> Result<Vec<f64>> {
        if masks.is_empty() {
            return Ok(Vec::new());
        }
        let probes: Vec<ProbeRequest> = masks
            .chunks(PROBE_MASK_CHUNK)
            .map(|chunk| ProbeRequest::ProbabilityMany {
                masks: chunk.to_vec(),
            })
            .collect();
        let responses = self.with_conn(|client| client.probe_pipelined(&probes))?;
        let mut out = Vec::with_capacity(masks.len());
        for resp in responses {
            match resp {
                ProbeResponse::Probabilities(ps) => out.extend(ps),
                other => return Err(self.shape_error(&other)),
            }
        }
        if out.len() != masks.len() {
            return Err(self.named(format!(
                "answered {} probabilities for {} masks",
                out.len(),
                masks.len()
            )));
        }
        Ok(out)
    }

    /// The fused-batch COUNT probe (`countm` lines); same contract as
    /// [`RemoteShard::probe_probability_many`].
    fn probe_count_many(&self, masks: &[Mask], _s: &mut ()) -> Result<Vec<Estimate>> {
        if masks.is_empty() {
            return Ok(Vec::new());
        }
        let probes: Vec<ProbeRequest> = masks
            .chunks(PROBE_MASK_CHUNK)
            .map(|chunk| ProbeRequest::CountMany {
                masks: chunk.to_vec(),
            })
            .collect();
        let responses = self.with_conn(|client| client.probe_pipelined(&probes))?;
        let mut out = Vec::with_capacity(masks.len());
        for resp in responses {
            match resp {
                ProbeResponse::Estimates(list) => out.extend(list),
                other => return Err(self.shape_error(&other)),
            }
        }
        if out.len() != masks.len() {
            return Err(self.named(format!(
                "answered {} estimates for {} masks",
                out.len(),
                masks.len()
            )));
        }
        Ok(out)
    }

    /// The compact top-k re-probe: one base mask + the candidate list per
    /// pipelined chunk — wire cost `O(mask + candidates)`, so a large
    /// candidate union cannot outgrow the serving layer's line cap.
    fn probe_count_restricted(
        &self,
        mask: &Mask,
        attr: AttrId,
        values: &[u32],
        _n_attr: usize,
        _s: &mut (),
    ) -> Result<Vec<Estimate>> {
        if values.is_empty() {
            return Ok(Vec::new());
        }
        let probes: Vec<ProbeRequest> = values
            .chunks(PROBE_VALUE_CHUNK)
            .map(|chunk| ProbeRequest::CountRestricted {
                mask: mask.clone(),
                attr,
                values: chunk.to_vec(),
            })
            .collect();
        let responses = self.with_conn(|client| client.probe_pipelined(&probes))?;
        let mut out = Vec::with_capacity(values.len());
        for resp in responses {
            match resp {
                ProbeResponse::Estimates(list) => out.extend(list),
                other => return Err(self.shape_error(&other)),
            }
        }
        if out.len() != values.len() {
            return Err(self.named(format!(
                "answered {} estimates for {} candidates",
                out.len(),
                values.len()
            )));
        }
        Ok(out)
    }

    fn probe_sum(
        &self,
        base: &Mask,
        attr: AttrId,
        values: &[f64],
        _s: &mut (),
    ) -> Result<Estimate> {
        let probe = ProbeRequest::Sum {
            mask: base.clone(),
            attr,
            values: values.to_vec(),
        };
        match self.call(&probe)? {
            ProbeResponse::Estimate(e) => Ok(e),
            other => Err(self.shape_error(&other)),
        }
    }

    fn probe_group_by(&self, mask: &Mask, attr: AttrId, _s: &mut ()) -> Result<Vec<Estimate>> {
        let probe = ProbeRequest::GroupBy {
            mask: mask.clone(),
            attr,
        };
        match self.call(&probe)? {
            ProbeResponse::Groups(groups) => Ok(groups),
            other => Err(self.shape_error(&other)),
        }
    }

    fn probe_top_k(
        &self,
        mask: &Mask,
        attr: AttrId,
        k: usize,
        _s: &mut (),
    ) -> Result<Vec<(u32, Estimate)>> {
        let probe = ProbeRequest::TopK {
            mask: mask.clone(),
            attr,
            k,
        };
        match self.call(&probe)? {
            ProbeResponse::Ranked(ranked) => Ok(ranked),
            other => Err(self.shape_error(&other)),
        }
    }

    /// One pipelined wire round for this shard's whole stratum, chunked so
    /// neither an index line nor a row-response line outgrows the line cap.
    /// A zero-quota stratum returns without touching the connection pool —
    /// a shard owed no rows cannot fail (or slow down) the draw.
    fn probe_sample_at(
        &self,
        k: usize,
        seed: u64,
        indices: &[u64],
        _s: &mut (),
    ) -> Result<Vec<Vec<u32>>> {
        if indices.is_empty() {
            return Ok(Vec::new());
        }
        let probes: Vec<ProbeRequest> = indices
            .chunks(PROBE_INDEX_CHUNK)
            .map(|chunk| ProbeRequest::SampleAt {
                k,
                seed,
                indices: chunk.to_vec(),
            })
            .collect();
        let responses = self.with_conn(|client| client.probe_pipelined(&probes))?;
        let mut out = Vec::with_capacity(indices.len());
        for resp in responses {
            match resp {
                ProbeResponse::Rows { rows, .. } => out.extend(rows),
                other => return Err(self.shape_error(&other)),
            }
        }
        if out.len() != indices.len() {
            return Err(self.named(format!(
                "answered {} rows for {} requested tuples",
                out.len(),
                indices.len()
            )));
        }
        Ok(out)
    }
}

/// A sharded summary whose shards live on other nodes: the remote
/// scatter/gather backend. See the module docs for the placement model and
/// the bitwise-parity guarantee.
#[derive(Debug)]
pub struct RemoteShardedSummary {
    schema: Schema,
    domain_sizes: Vec<usize>,
    n: u64,
    /// `n_s / n` per shard — computed with the same arithmetic as the
    /// local backend so mixture probabilities match bit for bit.
    weights: Vec<f64>,
    shards: Vec<RemoteShard>,
}

impl RemoteShardedSummary {
    /// Connects to every shard of a cluster manifest and performs the
    /// shard-manifest handshake: each node must answer `ping`, serve a
    /// schema identical to shard 0's, and report the cardinality the
    /// manifest declares for it. Any violation fails the connect with a
    /// [`ModelError::Remote`] naming the offending shard.
    pub fn connect(manifest: &[ClusterShard]) -> Result<Self> {
        if manifest.is_empty() {
            return Err(ModelError::Remote(
                "cluster manifest has no shards".to_string(),
            ));
        }
        let mut shards = Vec::with_capacity(manifest.len());
        let mut schema: Option<Schema> = None;
        for entry in manifest {
            let shard = RemoteShard {
                index: entry.index,
                addr: entry.addr.clone(),
                n: entry.n,
                conns: Mutex::new(Vec::new()),
            };
            let mut client = shard.checkout()?;
            client.ping().map_err(|e| shard.named_client_err(e))?;
            let served_schema = client
                .schema()
                .map_err(|e| shard.named_client_err(e))?
                .clone();
            let served_n = client
                .served_n()
                .map_err(|e| shard.named_client_err(e))?
                .ok_or_else(|| {
                    shard.named("server did not report its cardinality (pre-handshake build?)")
                })?;
            if served_n != entry.n {
                return Err(shard.named(format!(
                    "serves n = {served_n} but the manifest declares n = {}",
                    entry.n
                )));
            }
            match &schema {
                None => schema = Some(served_schema),
                Some(first) => {
                    if first != &served_schema {
                        return Err(
                            shard.named("served schema differs from shard 0's (wrong blob?)")
                        );
                    }
                }
            }
            // The handshake connection seeds the shard's pool.
            shard.put_back(client);
            shards.push(shard);
        }
        let schema = schema.expect("at least one shard");
        let n: u64 = shards.iter().map(RemoteShard::n).sum();
        if n == 0 {
            return Err(ModelError::Remote(
                "cluster serves an empty relation".to_string(),
            ));
        }
        let weights = shards.iter().map(|s| s.n() as f64 / n as f64).collect();
        let domain_sizes = schema.domain_sizes();
        Ok(RemoteShardedSummary {
            schema,
            domain_sizes,
            n,
            weights,
            shards,
        })
    }

    /// Total relation cardinality `n` (sum of shard cardinalities).
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The served relation's schema (identical on every shard, verified
    /// during the handshake).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The remote shards, in shard order.
    pub fn shards(&self) -> &[RemoteShard] {
        &self.shards
    }

    /// Number of shards in the cluster.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn shard_ns(&self) -> Vec<u64> {
        self.shards.iter().map(RemoteShard::n).collect()
    }
}

impl SummaryBackend for RemoteShardedSummary {
    /// One (empty) probe scratch per shard — remote probe state is the
    /// connection pool, but the scatter fan-out still wants a slot each.
    type Scratch = Vec<()>;
    /// The stratified assignment plus lazily fetched per-shard strata —
    /// each contributing shard costs one pipelined round, on first touch.
    type SamplePlan = RemoteSamplePlan;

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn n(&self) -> u64 {
        self.n
    }

    fn domain_sizes(&self) -> &[usize] {
        &self.domain_sizes
    }

    fn make_scratch(&self) -> Vec<()> {
        vec![(); self.shards.len()]
    }

    fn probability_under_mask(&self, mask: &Mask, scratch: &mut Vec<()>) -> Result<f64> {
        scatter::mixture_probability(&self.shards, &self.weights, mask, scratch)
    }

    fn count_under_mask(&self, mask: &Mask, scratch: &mut Vec<()>) -> Result<Estimate> {
        scatter::merged_count(&self.shards, mask, scratch)
    }

    /// Batched mixture probability over the wire: every shard answers the
    /// whole mask batch in a few pipelined lines, then the standard
    /// shard-order mixture fold runs per mask.
    fn probabilities_under_masks(&self, masks: &[Mask], scratch: &mut Vec<()>) -> Result<Vec<f64>> {
        scatter::mixture_probability_many(&self.shards, &self.weights, masks, scratch)
    }

    fn counts_under_masks(&self, masks: &[Mask], scratch: &mut Vec<()>) -> Result<Vec<Estimate>> {
        scatter::merged_count_many(&self.shards, masks, scratch)
    }

    fn sum_under_mask(
        &self,
        base: &Mask,
        attr: AttrId,
        values: &[f64],
        scratch: &mut Vec<()>,
    ) -> Result<Estimate> {
        scatter::merged_sum(&self.shards, base, attr, values, scratch)
    }

    fn group_by_under_mask(
        &self,
        mask: &Mask,
        attr: AttrId,
        scratch: &mut Vec<()>,
    ) -> Result<Vec<Estimate>> {
        scatter::merged_group_by(&self.shards, mask, attr, scratch)
    }

    fn top_k_under_mask(
        &self,
        mask: &Mask,
        attr: AttrId,
        k: usize,
        scratch: &mut Vec<()>,
    ) -> Result<Vec<(u32, Estimate)>> {
        let n_attr = self.domain_sizes[attr.0];
        scatter::merged_top_k(&self.shards, mask, attr, k, n_attr, scratch)
    }

    /// Computes the stratified shard assignment (the same largest-remainder
    /// plan the local backend computes) without touching the wire: strata
    /// are fetched lazily, on first touch, by [`Self::sample_tuple`]. A
    /// full `sample_rows` draw still costs one pipelined round per
    /// contributing shard, while a sparse `SampleAt` probe served by a
    /// gateway fetches only the strata it actually reads — a few-byte probe
    /// line can no longer demand the whole `k`-row draw.
    fn plan_samples(&self, k: usize, seed: u64) -> Result<RemoteSamplePlan> {
        let assignment = scatter::sample_assignment(&self.shard_ns(), k);
        let index_lists = scatter::shard_index_lists(&assignment, self.shards.len());
        let strata = (0..self.shards.len()).map(|_| Mutex::new(None)).collect();
        Ok(RemoteSamplePlan {
            k,
            seed,
            assignment,
            index_lists,
            strata,
        })
    }

    /// Copies tuple `index` out of its shard's stratum, fetching the
    /// stratum with one pipelined `SampleAt` probe on first touch. Tuple
    /// streams are keyed on `(seed, global index)` on the shard side, so
    /// the fetched rows are bitwise the rows the local backend would draw.
    fn sample_tuple(
        &self,
        plan: &RemoteSamplePlan,
        index: usize,
        _seed: u64,
        row: &mut [u32],
        _scratch: &mut Vec<()>,
    ) -> Result<()> {
        let shard_idx = *plan
            .assignment
            .get(index)
            .ok_or(ModelError::ShapeMismatch)? as usize;
        let indices = &plan.index_lists[shard_idx];
        // Index lists are built in ascending global order, so the row's
        // position within the stratum is found by binary search.
        let pos = indices
            .binary_search(&(index as u64))
            .map_err(|_| ModelError::ShapeMismatch)?;
        let mut stratum = plan.strata[shard_idx].lock().expect("sample stratum lock");
        if stratum.is_none() {
            let rows =
                self.shards[shard_idx].probe_sample_at(plan.k, plan.seed, indices, &mut ())?;
            for fetched in &rows {
                if fetched.len() != row.len() {
                    return Err(self.shards[shard_idx].named(format!(
                        "answered a row of arity {} (schema arity {})",
                        fetched.len(),
                        row.len()
                    )));
                }
            }
            *stratum = Some(rows);
        }
        row.copy_from_slice(&stratum.as_ref().expect("stratum fetched")[pos]);
        Ok(())
    }
}

/// The per-draw sample plan of the remote backend: the stratified shard
/// assignment plus lazily fetched per-shard strata (see
/// [`SummaryBackend::plan_samples`] on [`RemoteShardedSummary`]).
#[derive(Debug)]
pub struct RemoteSamplePlan {
    k: usize,
    seed: u64,
    /// Shard per global tuple index.
    assignment: Vec<u32>,
    /// Ascending global indices per shard; positions align with the
    /// fetched stratum rows.
    index_lists: Vec<Vec<u64>>,
    /// Fetched rows per shard, populated on first touch.
    strata: Vec<Mutex<Option<Vec<Vec<u32>>>>>,
}
