//! The event-driven server core: an in-tree epoll reactor multiplexing
//! thousands of connections over O(cores) threads.
//!
//! Layout: `reactor_threads` event loops each own a set of sessions (the
//! first also owns the listening socket), reading into per-session
//! buffers, running the incremental decoder ([`crate::session`]), and
//! flushing responses with interest-driven writes — a slow reader never
//! parks a compute thread. Decoded work is executed by a separate pool of
//! `dispatch_threads` workers pulling from one global FIFO; each session
//! keeps **at most one** work unit on that queue, so responses stay in
//! request order and dispatch is round-robin fair across connections. A
//! worker that finishes a unit re-enqueues the session's next one at the
//! back of the queue and nudges the owning reactor (via an `eventfd`)
//! only when the epoll interest mask actually needs to change.
//!
//! There is no `libc` crate in the dependency-free workspace, so the five
//! syscalls the reactor needs (`epoll_create1`, `epoll_ctl`,
//! `epoll_wait`, `eventfd`, plus raw `read`/`write` for the wakeup fd)
//! are declared directly; everything else goes through `std`'s
//! nonblocking `TcpStream`/`TcpListener`.

#![cfg(target_os = "linux")]

use crate::server::{
    busy_at_capacity, encode_outcome, execute_batch_lines, execute_run, ingest_stats_line, lock,
    server_stats_line, stats_line,
};
use crate::session::{DecodePolicy, ReplyKind, Session, SessionState, Work};
use crate::ServerConfig;
use entropydb_core::engine::{QueryEngine, SummaryBackend};
use entropydb_core::metrics::ServerCounters;
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

mod ffi {
    /// Mirror of the kernel's `struct epoll_event`. x86-64 is the one
    /// architecture where the kernel ABI packs it.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLLIN: u32 = 0x1;
    pub const EPOLLOUT: u32 = 0x4;
    pub const EPOLLERR: u32 = 0x8;
    pub const EPOLLHUP: u32 = 0x10;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLL_CLOEXEC: i32 = 0x80000;
    pub const EFD_CLOEXEC: i32 = 0x80000;
    pub const EFD_NONBLOCK: i32 = 0x800;

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        pub fn eventfd(initval: u32, flags: i32) -> i32;
        pub fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }
}

use ffi::{EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT};

/// `epoll_event.data` tokens for the two non-session fds.
const TOKEN_LISTENER: u64 = u64::MAX;
const TOKEN_WAKE: u64 = u64::MAX - 1;

/// How long a shed connection may linger (sinking its in-flight request)
/// before being closed — same budget as the threaded core's drain.
const SHED_LINGER: Duration = Duration::from_millis(500);

/// Event-loop tick: idle/linger sweeps and the shutdown re-check run at
/// least this often.
const TICK_MS: i32 = 25;

fn last_os_error() -> io::Error {
    io::Error::last_os_error()
}

fn epoll_create() -> io::Result<OwnedFd> {
    let fd = unsafe { ffi::epoll_create1(ffi::EPOLL_CLOEXEC) };
    if fd < 0 {
        return Err(last_os_error());
    }
    Ok(unsafe { OwnedFd::from_raw_fd(fd) })
}

fn eventfd_create() -> io::Result<OwnedFd> {
    let fd = unsafe { ffi::eventfd(0, ffi::EFD_CLOEXEC | ffi::EFD_NONBLOCK) };
    if fd < 0 {
        return Err(last_os_error());
    }
    Ok(unsafe { OwnedFd::from_raw_fd(fd) })
}

fn epoll_ctl(epfd: RawFd, op: i32, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
    let mut ev = ffi::EpollEvent {
        events: interest,
        data: token,
    };
    let rc = unsafe { ffi::epoll_ctl(epfd, op, fd, &mut ev) };
    if rc < 0 {
        return Err(last_os_error());
    }
    Ok(())
}

fn eventfd_signal(fd: RawFd) {
    let one: u64 = 1;
    // A full eventfd counter (EAGAIN) already guarantees a pending wakeup.
    let _ = unsafe { ffi::write(fd, (&one as *const u64).cast(), 8) };
}

fn eventfd_drain(fd: RawFd) {
    let mut buf = [0u8; 8];
    let _ = unsafe { ffi::read(fd, buf.as_mut_ptr(), 8) };
}

/// One global FIFO of (session, work) pairs feeding the compute pool.
struct Dispatcher {
    queue: Mutex<VecDeque<(Arc<Session>, Work)>>,
    ready: Condvar,
}

impl Dispatcher {
    fn push(&self, session: Arc<Session>, work: Work) {
        lock(&self.queue).push_back((session, work));
        self.ready.notify_one();
    }
}

/// Per-reactor mailboxes: freshly accepted sessions to adopt, and owned
/// sessions whose epoll interest (or close-readiness) changed off-thread.
struct ReactorMailbox {
    wake: OwnedFd,
    inbox: Mutex<Vec<Arc<Session>>>,
    nudges: Mutex<Vec<Arc<Session>>>,
}

/// State shared by every reactor thread and compute worker.
struct Inner {
    stop: AtomicBool,
    counters: Arc<ServerCounters>,
    policy: DecodePolicy,
    idle_timeout: Option<Duration>,
    max_sessions: Option<usize>,
    dispatcher: Dispatcher,
    mailboxes: Vec<ReactorMailbox>,
    next_session: AtomicU64,
}

impl Inner {
    /// Asks reactor `idx` to re-examine `session` (flush, re-arm epoll,
    /// maybe finalize a close).
    fn nudge(&self, session: Arc<Session>) {
        let mailbox = &self.mailboxes[session.reactor];
        lock(&mailbox.nudges).push(session);
        eventfd_signal(mailbox.wake.as_raw_fd());
    }
}

/// The reactor core's running state: joined (and sessions force-closed)
/// on shutdown.
pub(crate) struct ReactorHandle {
    inner: Arc<Inner>,
    threads: Vec<JoinHandle<()>>,
}

impl ReactorHandle {
    pub(crate) fn shutdown_inner(&mut self) {
        if self.threads.is_empty() {
            return;
        }
        self.inner.stop.store(true, Ordering::SeqCst);
        for mailbox in &self.inner.mailboxes {
            eventfd_signal(mailbox.wake.as_raw_fd());
        }
        self.inner.dispatcher.ready.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Resolved thread counts for one reactor core (see `ReactorConfig`).
pub(crate) struct ReactorTuning {
    pub reactor_threads: usize,
    pub dispatch_threads: usize,
    pub policy: DecodePolicy,
}

/// Starts the event-driven core on an already-bound listener.
pub(crate) fn spawn<B>(
    engine: Arc<QueryEngine<B>>,
    listener: TcpListener,
    config: &ServerConfig,
    tuning: ReactorTuning,
    counters: Arc<ServerCounters>,
) -> io::Result<ReactorHandle>
where
    B: SummaryBackend + 'static,
{
    listener.set_nonblocking(true)?;
    let n_reactors = tuning.reactor_threads.max(1);
    let mut mailboxes = Vec::with_capacity(n_reactors);
    let mut epolls = Vec::with_capacity(n_reactors);
    for _ in 0..n_reactors {
        let epfd = epoll_create()?;
        let wake = eventfd_create()?;
        epoll_ctl(
            epfd.as_raw_fd(),
            ffi::EPOLL_CTL_ADD,
            wake.as_raw_fd(),
            EPOLLIN,
            TOKEN_WAKE,
        )?;
        mailboxes.push(ReactorMailbox {
            wake,
            inbox: Mutex::new(Vec::new()),
            nudges: Mutex::new(Vec::new()),
        });
        epolls.push(epfd);
    }
    let inner = Arc::new(Inner {
        stop: AtomicBool::new(false),
        counters,
        policy: tuning.policy,
        idle_timeout: config.idle_timeout,
        max_sessions: config.max_sessions,
        dispatcher: Dispatcher {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        },
        mailboxes,
        next_session: AtomicU64::new(0),
    });
    let mut threads = Vec::new();
    let mut listener = Some(listener);
    for (idx, epfd) in epolls.into_iter().enumerate() {
        let inner = Arc::clone(&inner);
        // Reactor 0 owns the listening socket; the fd must move into that
        // thread (closing it here would silently deregister it from epoll).
        let listener = if idx == 0 {
            let l = listener.take().expect("listener moved once");
            epoll_ctl(
                epfd.as_raw_fd(),
                ffi::EPOLL_CTL_ADD,
                l.as_raw_fd(),
                EPOLLIN,
                TOKEN_LISTENER,
            )?;
            Some(l)
        } else {
            None
        };
        threads.push(std::thread::spawn(move || {
            reactor_loop(idx, inner, epfd, listener)
        }));
    }
    for _ in 0..tuning.dispatch_threads.max(1) {
        let inner = Arc::clone(&inner);
        let engine = Arc::clone(&engine);
        threads.push(std::thread::spawn(move || worker_loop(inner, engine)));
    }
    Ok(ReactorHandle { inner, threads })
}

/// Executes one decoded work unit into its encoded reply. Runs on a
/// compute worker with no locks held.
fn execute_work<B: SummaryBackend>(
    engine: &QueryEngine<B>,
    counters: &ServerCounters,
    work: &Work,
) -> String {
    match work {
        Work::Run(lines) => execute_run(engine, lines),
        Work::Batch(lines) => execute_batch_lines(engine, lines),
        Work::Reply(ReplyKind::Ping) => "pong\n".to_string(),
        Work::Reply(ReplyKind::Schema) => {
            crate::protocol::encode_schema(engine.schema(), engine.n())
        }
        Work::Reply(ReplyKind::CacheStats) => stats_line(engine),
        Work::Reply(ReplyKind::ServerStats) => server_stats_line(&counters.snapshot()),
        Work::Reply(ReplyKind::IngestStats) => ingest_stats_line(engine),
        Work::Reply(ReplyKind::Raw(reply)) => reply.clone(),
    }
}

fn worker_loop<B: SummaryBackend>(inner: Arc<Inner>, engine: Arc<QueryEngine<B>>) {
    loop {
        let job = {
            let mut queue = lock(&inner.dispatcher.queue);
            loop {
                if inner.stop.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = inner
                    .dispatcher
                    .ready
                    .wait(queue)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        let (session, work) = job;
        let weight = work.weight();
        let reply = execute_work(engine.as_ref(), &inner.counters, &work);
        let mut st = lock(&session.state);
        st.work_done(weight, &inner.counters);
        if st.closed {
            continue;
        }
        if st.broken {
            drop(st);
            inner.nudge(session);
            continue;
        }
        st.write_buf.extend_from_slice(reply.as_bytes());
        // Opportunistic flush: most clients are readable, so the common
        // case completes here without bouncing through the reactor.
        try_flush(&session, &mut st, &inner.counters);
        // The in-flight cap may have paused decoding mid-buffer; now that
        // this unit is answered there may be room for more work.
        st.pump(&inner.counters, &inner.policy);
        // Chain the session's next unit at the *back* of the global queue:
        // round-robin across sessions, strict order within one.
        if !st.job_active {
            if let Some(next) = st.pending.pop_front() {
                st.job_active = true;
                inner.dispatcher.push(Arc::clone(&session), next);
            }
        }
        let now = Instant::now();
        let mut want = 0u32;
        if st.wants_read(&inner.policy) {
            want |= EPOLLIN;
        }
        if st.wants_write() {
            want |= EPOLLOUT;
        }
        let needs_reactor = want != st.interest || st.ready_to_close(now) || st.broken;
        drop(st);
        if needs_reactor {
            inner.nudge(session);
        }
    }
}

/// Writes as much buffered response as the socket accepts right now.
fn try_flush(session: &Session, st: &mut SessionState, counters: &ServerCounters) {
    while st.unflushed() > 0 {
        match (&session.stream).write(&st.write_buf[st.write_pos..]) {
            Ok(0) => {
                st.broken = true;
                break;
            }
            Ok(n) => {
                st.write_pos += n;
                counters.add_bytes_out(n as u64);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                st.broken = true;
                break;
            }
        }
    }
    if st.unflushed() == 0 && !st.write_buf.is_empty() {
        st.write_buf.clear();
        st.write_pos = 0;
    }
}

/// One reactor thread: owns an epoll instance, its sessions, and (for
/// reactor 0) the listening socket.
fn reactor_loop(idx: usize, inner: Arc<Inner>, epfd: OwnedFd, listener: Option<TcpListener>) {
    let mut sessions: HashMap<u64, Arc<Session>> = HashMap::new();
    let mut events = [ffi::EpollEvent { events: 0, data: 0 }; 256];
    let mut last_sweep = Instant::now();
    let wake_fd = inner.mailboxes[idx].wake.as_raw_fd();
    loop {
        let n = unsafe {
            ffi::epoll_wait(
                epfd.as_raw_fd(),
                events.as_mut_ptr(),
                events.len() as i32,
                TICK_MS,
            )
        };
        if inner.stop.load(Ordering::SeqCst) {
            break;
        }
        if n < 0 {
            let err = last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                continue;
            }
            // An unrecoverable epoll failure: drop every session rather
            // than spin. The accept loop dies with the reactor.
            break;
        }
        for ev in events.iter().take(n.max(0) as usize) {
            let token = ev.data;
            let revents = ev.events;
            match token {
                TOKEN_WAKE => {
                    eventfd_drain(wake_fd);
                    adopt_inbox(&inner, idx, &epfd, &mut sessions);
                    handle_nudges(&inner, idx, &epfd, &mut sessions);
                }
                TOKEN_LISTENER => {
                    if let Some(listener) = &listener {
                        accept_ready(&inner, listener, &epfd, &mut sessions);
                    }
                }
                id => {
                    let Some(session) = sessions.get(&id).cloned() else {
                        continue;
                    };
                    handle_io(&inner, &epfd, &mut sessions, &session, revents);
                }
            }
        }
        let now = Instant::now();
        if now.duration_since(last_sweep) >= Duration::from_millis(TICK_MS as u64) {
            last_sweep = now;
            sweep(&inner, &epfd, &mut sessions, now);
        }
    }
    // Shutdown: force-close every owned session (readers see EOF) before
    // the listener and epoll fd drop.
    for (_, session) in sessions.drain() {
        let mut st = lock(&session.state);
        finalize_locked(&inner, &session, &mut st);
    }
}

/// Adopts sessions other threads handed to this reactor.
fn adopt_inbox(
    inner: &Inner,
    idx: usize,
    epfd: &OwnedFd,
    sessions: &mut HashMap<u64, Arc<Session>>,
) {
    let adopted: Vec<_> = lock(&inner.mailboxes[idx].inbox).drain(..).collect();
    for session in adopted {
        register_session(inner, epfd, sessions, session);
    }
}

/// Re-examines sessions whose state changed off-thread (compute workers
/// finishing work): re-arm epoll interest and finalize ripe closes.
fn handle_nudges(
    inner: &Inner,
    idx: usize,
    epfd: &OwnedFd,
    sessions: &mut HashMap<u64, Arc<Session>>,
) {
    let nudged: Vec<_> = lock(&inner.mailboxes[idx].nudges).drain(..).collect();
    let now = Instant::now();
    for session in nudged {
        if !sessions.contains_key(&session.id) {
            continue;
        }
        let mut st = lock(&session.state);
        if st.closed {
            continue;
        }
        st.pump(&inner.counters, &inner.policy);
        maybe_dispatch(inner, &session, &mut st);
        sync_session(inner, epfd, sessions, &session, &mut st, now);
    }
}

/// Registers a session with this reactor's epoll instance.
fn register_session(
    inner: &Inner,
    epfd: &OwnedFd,
    sessions: &mut HashMap<u64, Arc<Session>>,
    session: Arc<Session>,
) {
    let mut st = lock(&session.state);
    let mut want = 0u32;
    if st.wants_read(&inner.policy) {
        want |= EPOLLIN;
    }
    if st.wants_write() {
        want |= EPOLLOUT;
    }
    if epoll_ctl(
        epfd.as_raw_fd(),
        ffi::EPOLL_CTL_ADD,
        session.stream.as_raw_fd(),
        want,
        session.id,
    )
    .is_err()
    {
        finalize_locked(inner, &session, &mut st);
        return;
    }
    st.interest = want;
    drop(st);
    sessions.insert(session.id, session);
}

/// Accepts every pending connection, applying the `max_sessions` shed
/// policy, and distributes admitted sessions round-robin over reactors.
fn accept_ready(
    inner: &Inner,
    listener: &TcpListener,
    epfd: &OwnedFd,
    sessions: &mut HashMap<u64, Arc<Session>>,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            // Transient accept failure (ECONNABORTED, EMFILE): epoll will
            // re-report readiness if connections remain.
            Err(_) => break,
        };
        inner.counters.add_accepted();
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err() {
            let _ = stream.shutdown(Shutdown::Both);
            continue;
        }
        let now = Instant::now();
        let id = inner.next_session.fetch_add(1, Ordering::SeqCst);
        let shed_cap = inner
            .max_sessions
            .filter(|&cap| inner.counters.active_sessions() >= cap as u64);
        let mut st = SessionState::new(now);
        if let Some(cap) = shed_cap {
            // Load shedding rides the reactor write path: the busy line is
            // queued, the client's in-flight request is sunk (so a close
            // cannot reset the unread reply away), and the connection dies
            // on client EOF or the linger deadline — no thread per reject.
            inner.counters.add_shed();
            st.write_buf = encode_outcome(&Err(busy_at_capacity(cap))).into_bytes();
            st.sink_reads = true;
            st.linger_deadline = Some(now + SHED_LINGER);
        } else {
            inner.counters.session_started();
            st.counted_active = true;
        }
        let reactor = (id as usize) % inner.mailboxes.len();
        let session = Arc::new(Session {
            id,
            reactor,
            stream,
            state: Mutex::new(st),
        });
        if reactor == 0 {
            register_session(inner, epfd, sessions, session);
        } else {
            lock(&inner.mailboxes[reactor].inbox).push(session);
            eventfd_signal(inner.mailboxes[reactor].wake.as_raw_fd());
        }
    }
}

/// Services one session's readiness events.
fn handle_io(
    inner: &Inner,
    epfd: &OwnedFd,
    sessions: &mut HashMap<u64, Arc<Session>>,
    session: &Arc<Session>,
    revents: u32,
) {
    let mut st = lock(&session.state);
    if st.closed {
        return;
    }
    if revents & EPOLLERR != 0 {
        st.broken = true;
    }
    if revents & (EPOLLIN | EPOLLHUP) != 0 && !st.broken {
        read_ready(inner, session, &mut st);
    }
    if revents & EPOLLOUT != 0 && !st.broken {
        try_flush(session, &mut st, &inner.counters);
    }
    if !st.sink_reads {
        st.pump(&inner.counters, &inner.policy);
        maybe_dispatch(inner, session, &mut st);
    }
    sync_session(inner, epfd, sessions, session, &mut st, Instant::now());
}

/// Reads whatever the socket has, bounded per event so one firehose
/// connection cannot starve the rest of the reactor.
fn read_ready(inner: &Inner, session: &Session, st: &mut SessionState) {
    let mut chunk = [0u8; 16 * 1024];
    for _ in 0..16 {
        if st.sink_reads {
            // Shed connection: discard the client's in-flight bytes.
            match (&session.stream).read(&mut chunk) {
                Ok(0) => {
                    st.eof = true;
                    st.no_more_input = true;
                    st.close_after_flush = true;
                    break;
                }
                Ok(n) => {
                    inner.counters.add_bytes_in(n as u64);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    st.broken = true;
                    break;
                }
            }
            continue;
        }
        if !st.wants_read(&inner.policy) {
            break;
        }
        match (&session.stream).read(&mut chunk) {
            Ok(0) => {
                st.eof = true;
                break;
            }
            Ok(n) => {
                inner.counters.add_bytes_in(n as u64);
                st.last_activity = Instant::now();
                st.read_buf.extend_from_slice(&chunk[..n]);
                // Decode as we go so the in-flight cap can pause reading
                // before the buffer grows past it.
                st.pump(&inner.counters, &inner.policy);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                st.broken = true;
                break;
            }
        }
    }
}

/// Hands the session's next work unit to the dispatcher if none is
/// outstanding (the one-job-per-session invariant).
fn maybe_dispatch(inner: &Inner, session: &Arc<Session>, st: &mut SessionState) {
    if st.job_active || st.closed || st.broken {
        return;
    }
    if let Some(work) = st.pending.pop_front() {
        st.job_active = true;
        inner.dispatcher.push(Arc::clone(session), work);
    }
}

/// Re-arms the epoll interest mask to match what the session wants now,
/// and finalizes the close once the session is ripe.
fn sync_session(
    inner: &Inner,
    epfd: &OwnedFd,
    sessions: &mut HashMap<u64, Arc<Session>>,
    session: &Arc<Session>,
    st: &mut SessionState,
    now: Instant,
) {
    if st.closed {
        return;
    }
    if st.ready_to_close(now) {
        let _ = epoll_ctl(
            epfd.as_raw_fd(),
            ffi::EPOLL_CTL_DEL,
            session.stream.as_raw_fd(),
            0,
            session.id,
        );
        finalize_locked(inner, session, st);
        sessions.remove(&session.id);
        return;
    }
    let mut want = 0u32;
    if st.wants_read(&inner.policy) {
        want |= EPOLLIN;
    }
    if st.wants_write() {
        want |= EPOLLOUT;
    }
    if want != st.interest
        && epoll_ctl(
            epfd.as_raw_fd(),
            ffi::EPOLL_CTL_MOD,
            session.stream.as_raw_fd(),
            want,
            session.id,
        )
        .is_ok()
    {
        st.interest = want;
    }
}

/// Marks the session closed and releases everything it holds. The fd
/// itself closes when the last `Arc<Session>` drops, so a worker still
/// holding a clone can never touch a recycled fd number.
fn finalize_locked(inner: &Inner, session: &Session, st: &mut SessionState) {
    if st.closed {
        return;
    }
    st.closed = true;
    let _ = session.stream.shutdown(Shutdown::Both);
    if st.counted_active {
        st.counted_active = false;
        inner.counters.session_ended();
    }
    // Un-book work that will never execute; an in-flight job's weight is
    // returned by the worker itself.
    let abandoned: usize = st.pending.drain(..).map(|w| w.weight()).sum();
    if abandoned > 0 {
        inner.counters.dispatch_completed(abandoned as u64);
    }
    st.in_flight = 0;
    st.read_buf = Vec::new();
    st.write_buf = Vec::new();
    st.write_pos = 0;
}

/// Periodic maintenance: idle-timeout reaping, shed-linger expiry, and a
/// safety net for any close-ready session that missed a nudge.
fn sweep(inner: &Inner, epfd: &OwnedFd, sessions: &mut HashMap<u64, Arc<Session>>, now: Instant) {
    let candidates: Vec<_> = sessions.values().cloned().collect();
    for session in candidates {
        let mut st = lock(&session.state);
        if st.closed {
            sessions.remove(&session.id);
            continue;
        }
        if let Some(timeout) = inner.idle_timeout {
            // Mirrors the threaded core's per-read deadline: only a session
            // that is *waiting on the client* can idle out — never one with
            // queued work, an executing job, or an unflushed reply.
            if !st.sink_reads
                && !st.close_after_flush
                && st.pending.is_empty()
                && !st.job_active
                && st.unflushed() == 0
                && now.duration_since(st.last_activity) >= timeout
            {
                st.broken = true;
            }
        }
        sync_session(inner, epfd, sessions, &session, &mut st, now);
    }
}
