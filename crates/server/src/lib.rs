//! # entropydb-server
//!
//! A TCP query service over any EntropyDB summary backend — the
//! "interactive data exploration" front-end of the paper, serving a
//! [`QueryEngine`](entropydb_core::engine::QueryEngine) to remote clients.
//!
//! On Linux, [`serve`] runs an **event-driven core**: an in-tree epoll
//! reactor multiplexes thousands of connections over O(cores) event-loop
//! threads, sessions decode the line protocol incrementally over partial
//! reads, pipelined requests coalesce into engine batches on a persistent
//! compute pool, and responses flush via interest-driven writes — a slow
//! reader never parks a compute thread. Admission control (global
//! queue-depth caps, per-connection in-flight limits, typed `busy`
//! shedding) is tunable via [`ReactorConfig`] / [`serve_tuned`]. The
//! retained thread-per-connection core ([`serve_threaded`]) speaks the
//! identical wire protocol and serves as the measured baseline.
//!
//! The protocol is line-oriented text over TCP, built directly on the query
//! IR's wire encoding (`entropydb_core::plan`): a client sends one encoded
//! [`QueryRequest`](entropydb_core::plan::QueryRequest) per line and reads
//! one encoded [`QueryResponse`](entropydb_core::plan::QueryResponse) line
//! back. Batches pipeline through the engine's `execute_batch`, which fans
//! requests out across the persistent worker pool.
//!
//! ```text
//! client → server                 server → client
//! ---------------                 ---------------
//! ping                            pong
//! schema                          s1 <arity> / attr ... / end
//! stats                           stats cache <h> <m> <c> <e> | stats cache none
//! stats server                    stats server <active> <accepted> <shed> <in> <out> <depth>
//! stats ingest                    stats ingest <epoch> <staged> ... | stats ingest none
//! q1 <request>                    r1 <response>
//! a1 <token|-> <rows> <arity> ... ai1 <dup> <accepted> <staged> <epoch>
//! batch <n>  (then n q1 lines)    n r1 lines, in order
//! quit                            (connection closed)
//! ```
//!
//! Malformed or failing requests answer on the error channel
//! (`r1 err <message>`), which clients surface as
//! [`ModelError::Remote`](entropydb_core::error::ModelError::Remote); the
//! connection stays usable. [`ServerHandle::shutdown`] stops accepting,
//! disconnects every session, and joins all threads.
//!
//! Beyond the query IR, sessions answer mask-level *shard probes*
//! (`b1 ...` / `c1 ...` lines, `entropydb_core::probe`) — the fan-out
//! primitive of [`RemoteShardedSummary`], the scatter/gather backend that
//! places each shard of a sharded summary on its own `entropydb-serve`
//! node and merges wire responses with the same merge layer the local
//! sharded backend uses (bitwise-identical answers). A gateway can put a
//! gather-side answer cache in front of the fan-out
//! ([`RemoteShardedSummary::enable_probe_cache`]): repeats skip the wire,
//! concurrent identical probes coalesce into one round trip, and the
//! `stats` session line / gateway control channel expose its
//! [`CacheStatsSnapshot`] counters.
//!
//! The scatter/gather path is fault tolerant: a manifest shard may list
//! several replica endpoints, and the gatherer applies per-probe socket
//! deadlines, classifies failures (transport / protocol / busy /
//! deterministic), fails over between replicas with capped exponential
//! backoff, keeps per-node circuit breakers, and evicts replicas caught
//! serving a changed blob — see `remote` ([`FailoverConfig`]) for the
//! policy and [`fault`] for the fault-injection proxy the e2e suites use
//! to drill it. The serving side shares the vocabulary: overloaded or
//! deliberately capped servers answer a typed `busy` line
//! ([`ServerConfig::max_sessions`]) and idle sessions are reaped
//! ([`ServerConfig::idle_timeout`]).
//!
//! See `crates/server/src/bin/entropydb-serve.rs` for a ready-made daemon
//! over a persisted summary (monolithic or sharded manifest),
//! `crates/server/src/bin/entropydb-cluster.rs` for the shard-per-node
//! cluster tooling (spawn shard servers, health-probe a manifest, run a
//! scatter/gather gateway), and `examples/repl.rs` for an interactive
//! client.

mod client;
pub mod demo;
pub mod fault;
mod protocol;
#[cfg(target_os = "linux")]
mod reactor;
mod remote;
mod server;
mod session;

pub use client::{Client, ClientConfig, ClientError, ClientResult};
pub use entropydb_core::metrics::{
    CacheStatsSnapshot, IngestStatsSnapshot, ServerCounters, ServerStatsSnapshot,
};
pub use protocol::{
    decode_append, decode_append_outcome, decode_ingest_stats, decode_server_stats, encode_append,
    encode_append_outcome, encode_ingest_stats, encode_server_stats, MAX_APPEND_ROWS, MAX_BATCH,
    MAX_SAMPLE_ROWS,
};
pub use remote::{FailoverConfig, FailoverConfigBuilder, RemoteShard, RemoteShardedSummary, Replica};
pub use server::{
    serve, serve_threaded, serve_tuned, serve_with, ReactorConfig, ReactorConfigBuilder,
    ServerConfig, ServerConfigBuilder, ServerHandle,
};
