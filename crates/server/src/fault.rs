//! An in-tree fault-injection TCP proxy for the fault-tolerance e2e
//! suites: it sits between a gatherer and one shard server and, on
//! command, drops, delays, black-holes, or corrupts the traffic.
//!
//! The proxy listens on an ephemeral local port and forwards byte streams
//! to a fixed upstream address. Its [`FaultMode`] is runtime-switchable
//! ([`FaultProxy::set_mode`]) and applies to live connections on their
//! next chunk — a test can let a batch start healthy and then wedge the
//! node mid-flight:
//!
//! * [`FaultMode::Forward`] — transparent byte relay (the healthy
//!   baseline).
//! * [`FaultMode::Delay`] — relay, but sleep before forwarding each
//!   chunk: added tail latency without breaking any stream.
//! * [`FaultMode::BlackHole`] — accept and then swallow everything in
//!   both directions while keeping sockets open: the classic hung node.
//!   A client blocks until its socket deadline fires.
//! * [`FaultMode::Deny`] — close every connection (new and live)
//!   immediately: a crashed process whose port answers with resets.
//! * [`FaultMode::CorruptResponses`] — forward requests untouched but
//!   replace every upstream response chunk with a grammar-breaking
//!   garbage line. The client's decoder fails (a *protocol* failure), so
//!   the gatherer classifies and fails over. Requests are deliberately
//!   left intact: corrupting a request would make the shard answer a
//!   deterministic error line, which must *not* trigger failover.
//!
//! This is test infrastructure, not a production component: it trades
//! throughput for determinism (small chunks, short poll deadlines) and
//! lives in the library only so integration tests and the CI cluster
//! drill can share it.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

/// What the proxy does to the traffic it carries. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Transparent relay.
    Forward,
    /// Relay with the given extra latency injected before every chunk.
    Delay(Duration),
    /// Swallow all traffic while keeping sockets open (a hung node).
    BlackHole,
    /// Close new and live connections immediately (a dead node).
    Deny,
    /// Forward requests, replace responses with undecodable garbage.
    CorruptResponses,
}

/// Which way a relay half carries bytes; corruption applies only to the
/// response direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    ClientToUpstream,
    UpstreamToClient,
}

/// The garbage line [`FaultMode::CorruptResponses`] substitutes for real
/// response bytes: valid UTF-8 so it reaches the response *decoder* (and
/// fails there, as a protocol error) instead of dying in the reader.
const CORRUPT_LINE: &[u8] = b"zz corrupt frame\n";

/// Poll deadline on relay sockets: bounds how long a relay half can take
/// to notice a mode switch or proxy shutdown.
const RELAY_POLL: Duration = Duration::from_millis(25);

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

struct Shared {
    upstream: SocketAddr,
    mode: Mutex<FaultMode>,
    stop: AtomicBool,
    listener: TcpListener,
    connections_seen: AtomicUsize,
    /// Clones of every live relay socket, closed on shutdown to unblock
    /// relay threads.
    conns: Mutex<Vec<TcpStream>>,
    relays: Mutex<Vec<JoinHandle<()>>>,
}

/// A running fault-injection proxy. Dropping the handle shuts it down
/// (prefer calling [`FaultProxy::shutdown`] explicitly).
pub struct FaultProxy {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl FaultProxy {
    /// Starts a proxy on an ephemeral local port, forwarding to
    /// `upstream`, in [`FaultMode::Forward`].
    pub fn start(upstream: SocketAddr) -> io::Result<FaultProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            upstream,
            mode: Mutex::new(FaultMode::Forward),
            stop: AtomicBool::new(false),
            listener: listener.try_clone()?,
            connections_seen: AtomicUsize::new(0),
            conns: Mutex::new(Vec::new()),
            relays: Mutex::new(Vec::new()),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(listener, shared))
        };
        Ok(FaultProxy {
            addr,
            shared,
            accept: Some(accept),
        })
    }

    /// The address clients should dial instead of the upstream's.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Switches the fault mode; live connections observe it on their next
    /// chunk.
    pub fn set_mode(&self, mode: FaultMode) {
        *lock(&self.shared.mode) = mode;
    }

    /// The current fault mode.
    pub fn mode(&self) -> FaultMode {
        *lock(&self.shared.mode)
    }

    /// Connections accepted so far (including ones later denied).
    pub fn connections_seen(&self) -> usize {
        self.shared.connections_seen.load(Ordering::SeqCst)
    }

    /// Stops accepting, severs every relayed connection, and joins all
    /// proxy threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let Some(accept) = self.accept.take() else {
            return;
        };
        self.shared.stop.store(true, Ordering::SeqCst);
        let _ = self.shared.listener.set_nonblocking(true);
        let _ = TcpStream::connect(self.addr);
        let _ = accept.join();
        for conn in lock(&self.shared.conns).iter() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        let relays: Vec<_> = lock(&self.shared.relays).drain(..).collect();
        for relay in relays {
            let _ = relay.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

impl std::fmt::Debug for FaultProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultProxy")
            .field("addr", &self.addr)
            .field("upstream", &self.shared.upstream)
            .field("mode", &self.mode())
            .field("connections_seen", &self.connections_seen())
            .finish()
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let client = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
            Err(_) => {
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            let _ = client.shutdown(Shutdown::Both);
            break;
        }
        shared.connections_seen.fetch_add(1, Ordering::SeqCst);
        if *lock(&shared.mode) == FaultMode::Deny {
            let _ = client.shutdown(Shutdown::Both);
            continue;
        }
        let Ok(upstream) = TcpStream::connect(shared.upstream) else {
            let _ = client.shutdown(Shutdown::Both);
            continue;
        };
        let _ = client.set_nodelay(true);
        let _ = upstream.set_nodelay(true);
        // Reap finished relay threads so the handle list stays bounded.
        {
            let mut relays = lock(&shared.relays);
            let mut i = 0;
            while i < relays.len() {
                if relays[i].is_finished() {
                    let _ = relays.swap_remove(i).join();
                } else {
                    i += 1;
                }
            }
        }
        let pair = [
            (
                client.try_clone(),
                upstream.try_clone(),
                Direction::ClientToUpstream,
            ),
            (
                upstream.try_clone(),
                client.try_clone(),
                Direction::UpstreamToClient,
            ),
        ];
        lock(&shared.conns).push(client);
        lock(&shared.conns).push(upstream);
        for (from, to, direction) in pair {
            let (Ok(from), Ok(to)) = (from, to) else {
                continue;
            };
            let relay_shared = Arc::clone(&shared);
            let handle = std::thread::spawn(move || relay(from, to, direction, &relay_shared));
            lock(&shared.relays).push(handle);
        }
    }
}

/// One relay half: reads chunks from `from` and forwards (or drops, or
/// mangles) them into `to`, per the proxy's current mode. Exits on EOF,
/// any hard socket error, proxy shutdown, or [`FaultMode::Deny`].
fn relay(from: TcpStream, mut to: TcpStream, direction: Direction, shared: &Shared) {
    let mut from = from;
    // Short poll deadlines so the relay re-checks mode/stop even while a
    // stream is silent; the write deadline prevents a wedged peer from
    // pinning the thread past shutdown.
    let _ = from.set_read_timeout(Some(RELAY_POLL));
    let _ = to.set_write_timeout(Some(Duration::from_secs(1)));
    let mut buf = [0u8; 8192];
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        // Deny severs live connections too, even while they are silent.
        if *lock(&shared.mode) == FaultMode::Deny {
            break;
        }
        let n = match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        };
        let mode = *lock(&shared.mode);
        let written = match mode {
            FaultMode::Forward => to.write_all(&buf[..n]),
            FaultMode::Delay(extra) => {
                std::thread::sleep(extra);
                to.write_all(&buf[..n])
            }
            FaultMode::BlackHole => continue,
            FaultMode::Deny => break,
            FaultMode::CorruptResponses => match direction {
                Direction::ClientToUpstream => to.write_all(&buf[..n]),
                Direction::UpstreamToClient => to.write_all(CORRUPT_LINE),
            },
        };
        if written.is_err() || to.flush().is_err() {
            break;
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}
