//! Per-connection state for the event-driven server core: growable
//! read/write buffers, the line-protocol decoder run incrementally over
//! partial reads, and the decoded-work queue consumed by the compute pool.
//!
//! The decoder mirrors the threaded core's session loop byte for byte:
//! the same command classification, the same `batch <n>` framing
//! (including the final-unterminated-line behavior at EOF), and the same
//! [`MAX_LINE_BYTES`] violation semantics (the offending session dies, no
//! reply for the oversized line). Contiguous compute lines coalesce into
//! one [`Work::Run`] so a pipelined burst is answered with one engine
//! batch and one socket write.

use crate::protocol::{MAX_BATCH, MAX_LINE_BYTES};
use entropydb_core::error::ModelError;
use entropydb_core::metrics::ServerCounters;
use entropydb_core::plan::QueryResponse;
use entropydb_core::probe::ProbeResponse;
use std::collections::VecDeque;
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::Instant;

/// Cheap session-level replies answered by the compute pool without
/// touching the backend's query paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ReplyKind {
    /// `ping` → `pong`.
    Ping,
    /// `schema` → the multi-line schema block.
    Schema,
    /// `stats` → one `stats cache ...` line.
    CacheStats,
    /// `stats server` → one `stats server ...` line.
    ServerStats,
    /// `stats ingest` → one `stats ingest ...` line.
    IngestStats,
    /// A pre-encoded response (bad batch headers, overload shedding).
    Raw(String),
}

/// One unit of decoded work, executed in order, one at a time per session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Work {
    /// Contiguous compute lines (`q1 ...`, `b1 ...`, or garbage): decodable
    /// query requests execute as one engine batch, probes and decode errors
    /// answer in place, responses concatenate in request order.
    Run(Vec<String>),
    /// The payload lines of one complete `batch <n>` frame.
    Batch(Vec<String>),
    /// A session-level reply.
    Reply(ReplyKind),
}

impl Work {
    /// How many in-flight requests this work represents, for the
    /// per-connection cap and the global dispatch-depth gauge.
    pub(crate) fn weight(&self) -> usize {
        match self {
            Work::Run(lines) => lines.len(),
            Work::Batch(lines) => lines.len().max(1),
            Work::Reply(_) => 1,
        }
    }
}

/// Admission-control knobs the decoder applies while turning bytes into
/// work (see `ReactorConfig` for the user-facing surface).
#[derive(Debug, Clone, Copy)]
pub(crate) struct DecodePolicy {
    /// Global cap on decoded-but-unanswered requests; beyond it new
    /// compute lines are answered with typed `busy` lines instead of
    /// queueing without bound.
    pub max_queue_depth: u64,
    /// Per-connection cap on decoded-but-unanswered requests; beyond it
    /// the decoder stops consuming buffered bytes (and the reactor stops
    /// reading) until earlier work completes.
    pub max_in_flight: usize,
    /// Unflushed-response byte threshold past which reads pause: a slow
    /// reader stops generating new work instead of growing the write
    /// buffer without bound.
    pub max_write_buffer: usize,
}

/// The mutable half of a session, guarded by [`Session::state`].
#[derive(Debug)]
pub(crate) struct SessionState {
    /// Bytes read off the socket, not yet decoded into lines.
    pub read_buf: Vec<u8>,
    /// Offset into `read_buf` where the newline scan resumes (everything
    /// before it has already been scanned without finding a newline).
    pub scan_from: usize,
    /// An in-progress `batch <n>` frame: payload lines collected so far.
    pub batch: Option<BatchAccum>,
    /// Decoded work not yet handed to the dispatcher.
    pub pending: VecDeque<Work>,
    /// Total weight of decoded-but-unanswered work on this session.
    pub in_flight: usize,
    /// Whether one work unit is currently queued on / executing on the
    /// compute pool. At most one per session: strict response ordering and
    /// round-robin fairness both fall out of this invariant.
    pub job_active: bool,
    /// Encoded responses not yet written to the socket.
    pub write_buf: Vec<u8>,
    /// Prefix of `write_buf` already written.
    pub write_pos: usize,
    /// The epoll interest mask currently registered for this session.
    pub interest: u32,
    /// The socket hit EOF; once every buffered line is decoded the
    /// remaining bytes count as one final unterminated line.
    pub eof: bool,
    /// No further input will be decoded (EOF, `quit`, or a protocol
    /// violation); close once pending work is answered and flushed.
    pub no_more_input: bool,
    /// Close once the write buffer drains and no work is outstanding.
    pub close_after_flush: bool,
    /// The connection is gone (read/write error): close immediately,
    /// discarding anything unflushed.
    pub broken: bool,
    /// Finalized by the owning reactor; all further activity is a no-op.
    pub closed: bool,
    /// Shed connection: sink and discard input until EOF or the linger
    /// deadline, never decode.
    pub sink_reads: bool,
    /// Hard close deadline for shed connections.
    pub linger_deadline: Option<Instant>,
    /// Last moment bytes arrived from the client (idle-timeout reaping).
    pub last_activity: Instant,
    /// Whether this session is counted in the active-sessions gauge
    /// (admitted sessions yes, shed connections no).
    pub counted_active: bool,
}

/// Payload collection for one `batch <n>` frame.
#[derive(Debug)]
pub(crate) struct BatchAccum {
    pub want: usize,
    pub lines: Vec<String>,
}

/// One connection owned by the reactor core. The stream stays alive for
/// as long as any clone of the `Arc<Session>` does (the dispatcher queue
/// and a worker mid-job may briefly outlive deregistration), so the fd
/// cannot be reused while a stale reference could still touch it.
#[derive(Debug)]
pub(crate) struct Session {
    pub id: u64,
    /// Index of the owning reactor thread (nudges go to its wakeup fd).
    pub reactor: usize,
    pub stream: TcpStream,
    pub state: Mutex<SessionState>,
}

impl SessionState {
    pub(crate) fn new(now: Instant) -> Self {
        SessionState {
            read_buf: Vec::new(),
            scan_from: 0,
            batch: None,
            pending: VecDeque::new(),
            in_flight: 0,
            job_active: false,
            write_buf: Vec::new(),
            write_pos: 0,
            interest: 0,
            eof: false,
            no_more_input: false,
            close_after_flush: false,
            broken: false,
            closed: false,
            sink_reads: false,
            linger_deadline: None,
            last_activity: now,
            counted_active: false,
        }
    }

    /// Whether the reactor should keep EPOLLIN armed.
    pub(crate) fn wants_read(&self, policy: &DecodePolicy) -> bool {
        if self.closed || self.broken {
            return false;
        }
        if self.sink_reads {
            return true;
        }
        if self.no_more_input {
            return false;
        }
        // Backpressure: over the per-connection in-flight cap (unless a
        // batch frame is mid-collection — frames always finish, so a large
        // frame cannot deadlock against its own weight), or the client is
        // reading responses too slowly to deserve more decoded work.
        if self.batch.is_none() && self.in_flight >= policy.max_in_flight {
            return false;
        }
        self.unflushed() < policy.max_write_buffer
    }

    /// Whether the reactor should keep EPOLLOUT armed.
    pub(crate) fn wants_write(&self) -> bool {
        !self.closed && !self.broken && self.unflushed() > 0
    }

    /// Bytes queued for the client but not yet written.
    pub(crate) fn unflushed(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }

    /// Whether the owning reactor should finalize this session now.
    pub(crate) fn ready_to_close(&self, now: Instant) -> bool {
        if self.closed {
            return false;
        }
        if self.broken {
            return true;
        }
        if let Some(deadline) = self.linger_deadline {
            if now >= deadline {
                return true;
            }
        }
        self.close_after_flush
            && self.unflushed() == 0
            && self.pending.is_empty()
            && !self.job_active
    }

    /// Decodes every complete line in `read_buf` into pending work,
    /// stopping early at the per-connection in-flight cap. Mirrors the
    /// threaded session loop's classification exactly. The consumed prefix
    /// is compacted once per call, not per line, so a pipelined burst
    /// decodes in linear time.
    pub(crate) fn drain_lines(&mut self, counters: &ServerCounters, policy: &DecodePolicy) {
        // Start of the current (not yet decoded) line, absolute.
        let mut consumed = 0usize;
        while !self.no_more_input {
            if self.batch.is_none() && self.in_flight >= policy.max_in_flight {
                break;
            }
            let Some(nl) = self.read_buf[self.scan_from..]
                .iter()
                .position(|&b| b == b'\n')
            else {
                self.scan_from = self.read_buf.len();
                // A newline-free prefix at the line cap can no longer
                // become a legal line: end the session, exactly like the
                // threaded core's limited read erroring out.
                if self.scan_from - consumed >= MAX_LINE_BYTES as usize {
                    self.violation();
                }
                break;
            };
            let line_end = self.scan_from + nl;
            // `+ 1` counts the newline, matching the threaded core's cap
            // on `read_line` bytes.
            if (line_end + 1 - consumed) as u64 > MAX_LINE_BYTES {
                self.violation();
                break;
            }
            let line = match std::str::from_utf8(&self.read_buf[consumed..line_end]) {
                Ok(s) => s.trim().to_string(),
                Err(_) => {
                    // The threaded core's `read_line` fails the session on
                    // invalid UTF-8 without answering the line.
                    self.violation();
                    break;
                }
            };
            consumed = line_end + 1;
            self.scan_from = consumed;
            self.accept_line(line, counters, policy);
        }
        if self.no_more_input {
            // quit / violation: pipelined bytes after the terminator are
            // never decoded.
            self.read_buf = Vec::new();
            self.scan_from = 0;
        } else if consumed > 0 {
            self.read_buf.drain(..consumed);
            self.scan_from -= consumed;
        }
    }

    /// Decodes whatever can make progress: buffered complete lines, and —
    /// once EOF has been seen and every complete line is consumed — the
    /// final unterminated line (the threaded core's `read_line` yields it
    /// too). An incomplete batch frame at EOF is dropped without a reply,
    /// exactly like a connection dying mid-frame. Call after every read
    /// and after every completed work unit (the in-flight cap may have
    /// paused decoding mid-buffer).
    pub(crate) fn pump(&mut self, counters: &ServerCounters, policy: &DecodePolicy) {
        self.drain_lines(counters, policy);
        if !self.eof || self.no_more_input {
            return;
        }
        // Complete lines may remain while the in-flight cap pauses
        // decoding; the tail only counts as the final line once the whole
        // buffer has been scanned without finding another newline.
        if self.scan_from < self.read_buf.len() {
            return;
        }
        if self.batch.is_none()
            && self.in_flight >= policy.max_in_flight
            && !self.read_buf.is_empty()
        {
            return;
        }
        if !self.read_buf.is_empty() {
            let tail = std::mem::take(&mut self.read_buf);
            self.scan_from = 0;
            // Invalid UTF-8 in the tail ends the session without a reply,
            // same as the violation path.
            if let Ok(s) = std::str::from_utf8(&tail) {
                self.accept_line(s.trim().to_string(), counters, policy);
            }
        }
        self.no_more_input = true;
        self.close_after_flush = true;
        self.batch = None;
        self.read_buf = Vec::new();
        self.scan_from = 0;
    }

    /// A protocol violation (oversized or non-UTF-8 line): stop reading,
    /// answer what was already decoded, then close. The violating line
    /// itself gets no reply — same as the threaded core breaking out of
    /// its session loop. Buffer cleanup happens in the caller.
    fn violation(&mut self) {
        self.no_more_input = true;
        self.close_after_flush = true;
        self.batch = None;
    }

    /// Classifies one complete (trimmed) line, mirroring the threaded
    /// session loop's dispatch order.
    fn accept_line(&mut self, line: String, counters: &ServerCounters, policy: &DecodePolicy) {
        if let Some(accum) = &mut self.batch {
            // Batch payload lines are consumed verbatim — even empty ones
            // count toward the frame, exactly like the threaded core.
            accum.lines.push(line);
            if accum.lines.len() >= accum.want {
                let accum = self.batch.take().expect("accumulator present");
                if counters.dispatch_depth() >= policy.max_queue_depth {
                    let busy = QueryResponse::encode_error(&overloaded(counters));
                    let mut reply = String::with_capacity((busy.len() + 1) * accum.want);
                    for _ in 0..accum.want {
                        reply.push_str(&busy);
                        reply.push('\n');
                    }
                    self.push_reply_raw(reply, counters);
                } else {
                    self.push_work(Work::Batch(accum.lines), counters);
                }
            }
            return;
        }
        if line.is_empty() {
            return;
        }
        if line == "quit" {
            // The threaded core breaks out immediately: bytes pipelined
            // after `quit` are never decoded.
            self.no_more_input = true;
            self.close_after_flush = true;
            self.read_buf = Vec::new();
            self.scan_from = 0;
            return;
        }
        if line == "ping" {
            self.push_work(Work::Reply(ReplyKind::Ping), counters);
            return;
        }
        if line == "schema" {
            self.push_work(Work::Reply(ReplyKind::Schema), counters);
            return;
        }
        if line == "stats" {
            self.push_work(Work::Reply(ReplyKind::CacheStats), counters);
            return;
        }
        if line == "stats server" {
            self.push_work(Work::Reply(ReplyKind::ServerStats), counters);
            return;
        }
        if line == "stats ingest" {
            self.push_work(Work::Reply(ReplyKind::IngestStats), counters);
            return;
        }
        if let Some(count) = line.strip_prefix("batch") {
            match count.trim().parse::<usize>() {
                Ok(n) if n <= MAX_BATCH => {
                    if n == 0 {
                        self.push_work(Work::Batch(Vec::new()), counters);
                    } else {
                        self.batch = Some(BatchAccum {
                            want: n,
                            lines: Vec::new(),
                        });
                    }
                }
                _ => {
                    let count = count.trim();
                    let err = ModelError::Parse {
                        line: 0,
                        message: format!("bad batch size {count:?} (max {MAX_BATCH})"),
                    };
                    let mut reply = QueryResponse::encode_error(&err);
                    reply.push('\n');
                    self.push_reply_raw(reply, counters);
                }
            }
            return;
        }
        // A compute line: `b1 ...`, `q1 ...`, or garbage (answered on the
        // error channel by the executor). Over the global queue-depth cap
        // it is shed with a typed busy line on the matching channel.
        if counters.dispatch_depth() >= policy.max_queue_depth {
            let busy = overloaded(counters);
            let mut reply = if line.starts_with("b1") {
                ProbeResponse::encode_error(&busy)
            } else {
                QueryResponse::encode_error(&busy)
            };
            reply.push('\n');
            self.push_reply_raw(reply, counters);
            return;
        }
        // Coalesce with a trailing not-yet-dispatched run so one pipelined
        // burst becomes one engine batch and one socket write.
        if let Some(Work::Run(lines)) = self.pending.back_mut() {
            lines.push(line);
            self.in_flight += 1;
            counters.dispatch_enqueued(1);
            return;
        }
        self.push_work(Work::Run(vec![line]), counters);
    }

    fn push_work(&mut self, work: Work, counters: &ServerCounters) {
        let weight = work.weight();
        self.in_flight += weight;
        counters.dispatch_enqueued(weight as u64);
        self.pending.push_back(work);
    }

    /// Appends a pre-encoded reply, merging with a trailing raw reply so a
    /// burst of shed lines stays one work unit.
    fn push_reply_raw(&mut self, reply: String, counters: &ServerCounters) {
        if let Some(Work::Reply(ReplyKind::Raw(s))) = self.pending.back_mut() {
            s.push_str(&reply);
            return;
        }
        self.push_work(Work::Reply(ReplyKind::Raw(reply)), counters);
    }

    /// Books completed work out of the in-flight accounting.
    pub(crate) fn work_done(&mut self, weight: usize, counters: &ServerCounters) {
        self.in_flight -= weight.min(self.in_flight);
        counters.dispatch_completed(weight as u64);
        self.job_active = false;
    }
}

/// The typed overload error for queue-depth shedding.
fn overloaded(counters: &ServerCounters) -> ModelError {
    ModelError::Busy(format!(
        "server overloaded ({} requests in flight)",
        counters.dispatch_depth()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> DecodePolicy {
        DecodePolicy {
            max_queue_depth: u64::MAX,
            max_in_flight: usize::MAX,
            max_write_buffer: usize::MAX,
        }
    }

    fn state_with(bytes: &[u8]) -> (SessionState, ServerCounters) {
        let mut s = SessionState::new(Instant::now());
        s.read_buf.extend_from_slice(bytes);
        (s, ServerCounters::default())
    }

    #[test]
    fn pipelined_compute_lines_coalesce_into_one_run() {
        let (mut s, c) = state_with(b"q1 a\nq1 b\nb1 x\nq1 c\n");
        s.drain_lines(&c, &policy());
        assert_eq!(s.pending.len(), 1);
        assert_eq!(
            s.pending[0],
            Work::Run(vec![
                "q1 a".into(),
                "q1 b".into(),
                "b1 x".into(),
                "q1 c".into()
            ])
        );
        assert_eq!(s.in_flight, 4);
        assert_eq!(c.dispatch_depth(), 4);
    }

    #[test]
    fn partial_lines_wait_for_more_bytes() {
        let (mut s, c) = state_with(b"pi");
        s.drain_lines(&c, &policy());
        assert!(s.pending.is_empty());
        s.read_buf.extend_from_slice(b"ng\nq1");
        s.drain_lines(&c, &policy());
        assert_eq!(s.pending.len(), 1);
        assert_eq!(s.pending[0], Work::Reply(ReplyKind::Ping));
        assert_eq!(s.read_buf, b"q1");
    }

    #[test]
    fn session_commands_between_runs_keep_order() {
        let (mut s, c) = state_with(b"q1 a\nping\nq1 b\n");
        s.drain_lines(&c, &policy());
        let works: Vec<_> = s.pending.iter().cloned().collect();
        assert_eq!(
            works,
            vec![
                Work::Run(vec!["q1 a".into()]),
                Work::Reply(ReplyKind::Ping),
                Work::Run(vec!["q1 b".into()]),
            ]
        );
    }

    #[test]
    fn batch_frames_collect_exactly_n_payload_lines() {
        let (mut s, c) = state_with(b"batch 3\nq1 a\n\nq1 b\nping\n");
        s.drain_lines(&c, &policy());
        // The empty line counts as payload (it decodes to an error slot),
        // matching the threaded core; the trailing ping is a new command.
        assert_eq!(s.pending.len(), 2);
        assert_eq!(
            s.pending[0],
            Work::Batch(vec!["q1 a".into(), "".into(), "q1 b".into()])
        );
        assert_eq!(s.pending[1], Work::Reply(ReplyKind::Ping));
    }

    #[test]
    fn batch_zero_and_bad_headers_answer_without_payload() {
        let (mut s, c) = state_with(b"batch 0\nbatch nope\nbatch 999999999\n");
        s.drain_lines(&c, &policy());
        assert_eq!(s.pending.len(), 2);
        assert_eq!(s.pending[0], Work::Batch(Vec::new()));
        match &s.pending[1] {
            Work::Reply(ReplyKind::Raw(reply)) => {
                // Two bad headers merged into one raw reply, one line each.
                assert_eq!(reply.lines().count(), 2);
                assert!(reply.contains("bad batch size \"nope\""));
                assert!(reply.contains("bad batch size \"999999999\""));
            }
            other => panic!("expected merged raw reply, got {other:?}"),
        }
    }

    #[test]
    fn batchless_prefix_quirk_is_preserved() {
        // The threaded core strips the literal prefix "batch", so "batch5"
        // is a valid one-frame header.
        let (mut s, c) = state_with(b"batch5\nq1 a\nq1 b\nq1 c\nq1 d\nq1 e\n");
        s.drain_lines(&c, &policy());
        assert_eq!(s.pending.len(), 1);
        assert_eq!(
            s.pending[0],
            Work::Batch(vec![
                "q1 a".into(),
                "q1 b".into(),
                "q1 c".into(),
                "q1 d".into(),
                "q1 e".into()
            ])
        );
    }

    #[test]
    fn quit_discards_pipelined_remainder() {
        let (mut s, c) = state_with(b"ping\nquit\nq1 never\n");
        s.drain_lines(&c, &policy());
        assert_eq!(s.pending.len(), 1);
        assert!(s.no_more_input);
        assert!(s.close_after_flush);
        assert!(s.read_buf.is_empty());
    }

    #[test]
    fn eof_processes_final_unterminated_line() {
        let (mut s, c) = state_with(b"q1 a\nping");
        s.eof = true;
        s.pump(&c, &policy());
        let works: Vec<_> = s.pending.iter().cloned().collect();
        assert_eq!(
            works,
            vec![Work::Run(vec!["q1 a".into()]), Work::Reply(ReplyKind::Ping),]
        );
        assert!(s.no_more_input && s.close_after_flush);
    }

    #[test]
    fn eof_mid_batch_drops_the_frame_silently() {
        let (mut s, c) = state_with(b"batch 3\nq1 a\n");
        s.eof = true;
        s.pump(&c, &policy());
        assert!(s.pending.is_empty());
        assert_eq!(c.dispatch_depth(), 0);
    }

    #[test]
    fn eof_final_line_can_complete_a_batch() {
        let (mut s, c) = state_with(b"batch 2\nq1 a\nq1 b");
        s.eof = true;
        s.pump(&c, &policy());
        assert_eq!(s.pending.len(), 1);
        assert_eq!(
            s.pending[0],
            Work::Batch(vec!["q1 a".into(), "q1 b".into()])
        );
    }

    #[test]
    fn oversized_newline_free_prefix_kills_the_session() {
        let (mut s, c) = state_with(&vec![b'x'; MAX_LINE_BYTES as usize]);
        s.drain_lines(&c, &policy());
        assert!(s.no_more_input);
        assert!(s.close_after_flush);
        assert!(s.pending.is_empty());
    }

    #[test]
    fn max_sized_terminated_line_is_still_accepted() {
        // A line of exactly MAX_LINE_BYTES bytes including the newline is
        // legal (the threaded read accepts it); one byte more is not.
        let mut ok = vec![b'x'; MAX_LINE_BYTES as usize - 1];
        ok.push(b'\n');
        let (mut s, c) = state_with(&ok);
        s.drain_lines(&c, &policy());
        assert!(!s.no_more_input);
        assert_eq!(s.pending.len(), 1);

        let mut too_long = vec![b'x'; MAX_LINE_BYTES as usize];
        too_long.push(b'\n');
        let (mut s, c) = state_with(&too_long);
        s.drain_lines(&c, &policy());
        assert!(s.no_more_input);
        assert!(s.pending.is_empty());
    }

    #[test]
    fn invalid_utf8_kills_the_session_without_a_reply() {
        let (mut s, c) = state_with(b"ping\n\xff\xfe\nping\n");
        s.drain_lines(&c, &policy());
        assert_eq!(s.pending.len(), 1);
        assert!(s.no_more_input);
    }

    #[test]
    fn in_flight_cap_pauses_decoding_not_batch_frames() {
        let (mut s, c) = state_with(b"q1 a\nq1 b\nq1 c\n");
        let tight = DecodePolicy {
            max_queue_depth: u64::MAX,
            max_in_flight: 2,
            max_write_buffer: usize::MAX,
        };
        s.drain_lines(&c, &tight);
        assert_eq!(s.in_flight, 2);
        assert_eq!(s.read_buf, b"q1 c\n");
        assert!(!s.wants_read(&tight));
        // Completing the queued work resumes decoding.
        let Some(work) = s.pending.pop_front() else {
            panic!("work queued");
        };
        s.work_done(work.weight(), &c);
        assert!(s.wants_read(&tight));
        s.drain_lines(&c, &tight);
        assert_eq!(s.read_buf, b"");

        // A batch frame mid-collection keeps decoding over the cap so the
        // frame's own weight cannot deadlock the session.
        let (mut s, c) = state_with(b"batch 4\nq1 a\nq1 b\nq1 c\nq1 d\n");
        s.drain_lines(&c, &tight);
        assert_eq!(s.pending.len(), 1);
        assert_eq!(c.dispatch_depth(), 4);
    }

    #[test]
    fn queue_depth_cap_sheds_typed_busy_on_both_channels() {
        let tight = DecodePolicy {
            max_queue_depth: 0,
            max_in_flight: usize::MAX,
            max_write_buffer: usize::MAX,
        };
        let (mut s, c) = state_with(b"q1 a\nb1 x\nping\n");
        s.drain_lines(&c, &tight);
        // Two shed lines merge into one raw reply; ping is never shed.
        assert_eq!(s.pending.len(), 2);
        match &s.pending[0] {
            Work::Reply(ReplyKind::Raw(reply)) => {
                let lines: Vec<_> = reply.lines().collect();
                assert_eq!(lines.len(), 2);
                assert!(lines[0].starts_with("r1 busy server overloaded"));
                assert!(lines[1].starts_with("c1 busy server overloaded"));
            }
            other => panic!("expected raw busy reply, got {other:?}"),
        }
        assert_eq!(s.pending[1], Work::Reply(ReplyKind::Ping));
    }

    #[test]
    fn queue_depth_cap_sheds_whole_batch_frames() {
        let tight = DecodePolicy {
            max_queue_depth: 0,
            max_in_flight: usize::MAX,
            max_write_buffer: usize::MAX,
        };
        let (mut s, c) = state_with(b"batch 3\nq1 a\nq1 b\nq1 c\n");
        s.drain_lines(&c, &tight);
        assert_eq!(s.pending.len(), 1);
        match &s.pending[0] {
            Work::Reply(ReplyKind::Raw(reply)) => {
                let lines: Vec<_> = reply.lines().collect();
                assert_eq!(lines.len(), 3);
                assert!(lines.iter().all(|l| l.starts_with("r1 busy")));
            }
            other => panic!("expected raw busy reply, got {other:?}"),
        }
    }
}
