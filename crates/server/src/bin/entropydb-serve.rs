//! `entropydb-serve` — serve a persisted summary over TCP.
//!
//! ```text
//! entropydb-serve <summary> [--addr HOST:PORT] [--idle-timeout SECS]
//!                 [--max-sessions N] [--core reactor|threaded]
//!                 [--reactor-threads N] [--dispatch-threads N]
//!                 [--max-queue-depth N] [--max-in-flight N]
//!                 [--live] [--delta-threshold ROWS]
//! ```
//!
//! `<summary>` is any of the persistence layouts of
//! `entropydb_core::serialize`: a single-summary text file, a sharded
//! manifest-with-embedded-blobs file, or a `save_sharded_dir` directory
//! (`manifest.txt` + per-shard blobs). The backend is picked by sniffing
//! the header, and the server is generic over it — a monolithic and a
//! sharded summary serve the identical protocol.
//!
//! `--idle-timeout SECS` closes sessions whose client stays silent longer
//! than the deadline (default: sessions may idle forever);
//! `--max-sessions N` sheds connections over the cap with a typed `busy`
//! line instead of admitting them. See `ServerConfig`.
//!
//! `--core` picks the server core: the event-driven epoll `reactor`
//! (default on Linux) or the retained `threaded` thread-per-connection
//! baseline. The remaining flags tune the reactor's thread counts and
//! admission control (0 = auto / unbounded); see `ReactorConfig`.
//!
//! `--live` serves a sharded directory as a **mutable** live summary:
//! `a1` wire appends stage rows into a delta shard that a background
//! worker re-solves and folds into the served mixture
//! (`entropydb_core::ingest::LiveSummary`); `--delta-threshold ROWS`
//! sets how many staged rows trigger a background fold (default 1024).
//! Requires the directory layout (`manifest.txt` + shard blobs).
//!
//! The default address is `127.0.0.1:4141`; use port 0 for an ephemeral
//! port (printed on startup). The process serves until stdin reaches EOF
//! or a `quit` line is typed, then shuts down gracefully (all sessions
//! disconnected and joined).

use entropydb_core::engine::{QueryEngine, SummaryBackend};
use entropydb_core::serialize;
use entropydb_server::{serve_threaded, serve_tuned, ReactorConfig, ServerConfig, ServerHandle};
use std::io::BufRead;
use std::path::Path;
use std::process::ExitCode;
use std::time::Duration;

/// Which server core to run; `Reactor` falls back to the threaded core on
/// non-Linux targets (see `serve_tuned`).
#[derive(Clone, Copy)]
enum Core {
    Reactor,
    Threaded,
}

fn start<B>(
    engine: QueryEngine<B>,
    addr: &str,
    config: ServerConfig,
    core: Core,
    tuning: ReactorConfig,
) -> std::io::Result<ServerHandle>
where
    B: SummaryBackend + 'static,
{
    match core {
        Core::Reactor => serve_tuned(engine, addr, config, tuning),
        Core::Threaded => serve_threaded(engine, addr, config),
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: entropydb-serve <summary file or sharded dir> [--addr HOST:PORT]\n\
         \x20                    [--idle-timeout SECS] [--max-sessions N]\n\
         \x20                    [--core reactor|threaded] [--reactor-threads N]\n\
         \x20                    [--dispatch-threads N] [--max-queue-depth N]\n\
         \x20                    [--max-in-flight N] [--live] [--delta-threshold ROWS]"
    );
    ExitCode::from(2)
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn wait_for_quit() {
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(l) if l.trim() == "quit" => break,
            Ok(_) => continue,
            Err(_) => break,
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.first() else {
        return usage();
    };
    let addr = flag(&args, "--addr").unwrap_or_else(|| "127.0.0.1:4141".to_string());
    let mut config = ServerConfig::default();
    if let Some(raw) = flag(&args, "--idle-timeout") {
        match raw.parse::<f64>() {
            Ok(secs) if secs > 0.0 => config.idle_timeout = Some(Duration::from_secs_f64(secs)),
            _ => {
                eprintln!("error: cannot parse --idle-timeout value {raw:?}");
                return usage();
            }
        }
    }
    if let Some(raw) = flag(&args, "--max-sessions") {
        match raw.parse::<usize>() {
            Ok(cap) if cap > 0 => config.max_sessions = Some(cap),
            _ => {
                eprintln!("error: cannot parse --max-sessions value {raw:?}");
                return usage();
            }
        }
    }
    let core = match flag(&args, "--core").as_deref() {
        None | Some("reactor") => Core::Reactor,
        Some("threaded") => Core::Threaded,
        Some(other) => {
            eprintln!("error: unknown --core value {other:?} (want reactor or threaded)");
            return usage();
        }
    };
    let mut tuning = ReactorConfig::default();
    for (name, slot) in [
        ("--reactor-threads", &mut tuning.reactor_threads),
        ("--dispatch-threads", &mut tuning.dispatch_threads),
        ("--max-queue-depth", &mut tuning.max_queue_depth),
        ("--max-in-flight", &mut tuning.max_in_flight_per_conn),
    ] {
        if let Some(raw) = flag(&args, name) {
            match raw.parse::<usize>() {
                Ok(v) => *slot = v,
                Err(_) => {
                    eprintln!("error: cannot parse {name} value {raw:?}");
                    return usage();
                }
            }
        }
    }
    let live = args.iter().any(|a| a == "--live");
    let mut ingest = entropydb_core::ingest::IngestConfig::default();
    if let Some(raw) = flag(&args, "--delta-threshold") {
        match raw.parse::<usize>() {
            Ok(rows) if rows > 0 => {
                ingest.delta_rows = rows;
                ingest.seal_rows = ingest.seal_rows.max(rows);
            }
            _ => {
                eprintln!("error: cannot parse --delta-threshold value {raw:?}");
                return usage();
            }
        }
    }
    let path = Path::new(path);

    // Sniff the persistence layout and start the matching backend.
    let handle = if live {
        if !path.is_dir() {
            eprintln!("error: --live requires a sharded directory (manifest.txt + shard blobs)");
            return ExitCode::FAILURE;
        }
        match serialize::load_live_dir(
            path,
            entropydb_core::solver::SolverConfig::default(),
            ingest,
        ) {
            Ok(summary) => {
                eprintln!(
                    "loaded live summary: {} segments, n = {}, epoch = {}",
                    summary.num_segments(),
                    summary.n(),
                    summary.epoch()
                );
                start(
                    QueryEngine::new(summary),
                    addr.as_str(),
                    config,
                    core,
                    tuning,
                )
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else if path.is_dir() {
        match serialize::load_sharded_dir(path) {
            Ok(sharded) => {
                eprintln!(
                    "loaded sharded summary: {} shards, n = {}",
                    sharded.num_shards(),
                    sharded.n()
                );
                start(
                    QueryEngine::new(sharded),
                    addr.as_str(),
                    config,
                    core,
                    tuning,
                )
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let header = std::fs::read_to_string(path)
            .map(|t| t.lines().next().unwrap_or("").to_string())
            .unwrap_or_default();
        if header.starts_with("entropydb-sharded-summary") {
            match serialize::load_sharded_file(path) {
                Ok(sharded) => {
                    eprintln!(
                        "loaded sharded summary: {} shards, n = {}",
                        sharded.num_shards(),
                        sharded.n()
                    );
                    start(
                        QueryEngine::new(sharded),
                        addr.as_str(),
                        config,
                        core,
                        tuning,
                    )
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            match serialize::load_file(path) {
                Ok(summary) => {
                    eprintln!("loaded summary: n = {}", summary.n());
                    start(
                        QueryEngine::new(summary),
                        addr.as_str(),
                        config,
                        core,
                        tuning,
                    )
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    match handle {
        Ok(handle) => {
            println!("listening on {}", handle.local_addr());
            eprintln!("type 'quit' (or close stdin) to stop");
            wait_for_quit();
            eprintln!(
                "shutting down ({} active sessions)",
                handle.active_sessions()
            );
            handle.shutdown();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            ExitCode::FAILURE
        }
    }
}
