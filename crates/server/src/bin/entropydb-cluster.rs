//! `entropydb-cluster` — shard-per-node cluster tooling.
//!
//! ```text
//! entropydb-cluster spawn <sharded summary> [--base-port P] [--manifest FILE]
//! entropydb-cluster probe <manifest>
//! entropydb-cluster gateway <manifest> [--addr HOST:PORT]
//! entropydb-cluster make-demo <dir> [--shards N] [--rows R] [--base-port P]
//! ```
//!
//! * `spawn` loads a sharded summary (single-file manifest or
//!   `save_sharded_dir` directory) and serves **each shard on its own
//!   port** (`base-port + shard index`; `--base-port 0` picks ephemeral
//!   ports), writing the cluster manifest the scatter/gather backend
//!   consumes. Serves until stdin reaches EOF or a `quit` line.
//! * `probe` health-checks every shard of a manifest: dials it, runs the
//!   schema/cardinality handshake, and reports per-shard status; exits
//!   non-zero if any shard is degraded.
//! * `gateway` connects a [`RemoteShardedSummary`] over the manifest and
//!   serves it on one address — a scatter/gather front-end node answering
//!   the ordinary query protocol while fanning out to the shard nodes.
//! * `make-demo` builds a small deterministic sharded summary and writes
//!   everything a localhost cluster walkthrough (or the `cluster-e2e` CI
//!   job) needs: per-shard blobs for `entropydb-serve`, the combined
//!   sharded blob as the local parity reference, and a manifest pointing
//!   at `127.0.0.1:base-port + i`.

use entropydb_core::engine::QueryEngine;
use entropydb_core::serialize::{self, ClusterShard};
use entropydb_core::sharded::ShardedSummary;
use entropydb_server::{demo, serve, Client, RemoteShardedSummary, ServerHandle};
use std::io::BufRead;
use std::path::Path;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: entropydb-cluster <command>\n\
         \n\
         commands:\n\
         \x20 spawn <sharded summary> [--base-port P] [--manifest FILE]\n\
         \x20 probe <manifest>\n\
         \x20 gateway <manifest> [--addr HOST:PORT]\n\
         \x20 make-demo <dir> [--shards N] [--rows R] [--base-port P]"
    );
    ExitCode::from(2)
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Checks that `base_port + count - 1` stays a valid port (`base_port` 0
/// means ephemeral and is always fine).
fn check_port_range(base_port: u16, count: usize) -> Result<(), String> {
    if base_port != 0 && (base_port as usize) + count - 1 > u16::MAX as usize {
        return Err(format!(
            "--base-port {base_port} + {count} shards overflows the port range"
        ));
    }
    Ok(())
}

/// Parses an optional numeric flag, erroring (instead of silently falling
/// back to the default) when the operator passed something unparseable.
fn parsed_flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag(args, name) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("cannot parse {name} value {raw:?}")),
    }
}

fn wait_for_quit() {
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(l) if l.trim() == "quit" => break,
            Ok(_) => continue,
            Err(_) => break,
        }
    }
}

fn load_sharded(path: &Path) -> Result<ShardedSummary, String> {
    if path.is_dir() {
        serialize::load_sharded_dir(path).map_err(|e| e.to_string())
    } else {
        serialize::load_sharded_file(path).map_err(|e| e.to_string())
    }
}

/// Serve every shard of a sharded summary on its own port.
fn cmd_spawn(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    let base_port: u16 = match parsed_flag(args, "--base-port", 4151) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let sharded = match load_sharded(Path::new(path)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = check_port_range(base_port, sharded.num_shards()) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    let mut handles: Vec<ServerHandle> = Vec::new();
    let mut manifest: Vec<ClusterShard> = Vec::new();
    for (i, shard) in sharded.shards().iter().enumerate() {
        let port = if base_port == 0 {
            0
        } else {
            base_port + i as u16
        };
        let engine = QueryEngine::new(shard.clone());
        match serve(engine, ("127.0.0.1", port)) {
            Ok(handle) => {
                manifest.push(ClusterShard {
                    index: i,
                    n: shard.n(),
                    addr: handle.local_addr().to_string(),
                });
                eprintln!(
                    "shard {i}: n = {}, serving on {}",
                    shard.n(),
                    handle.local_addr()
                );
                handles.push(handle);
            }
            Err(e) => {
                eprintln!("shard {i}: cannot bind port {port}: {e}");
                for handle in handles {
                    handle.shutdown();
                }
                return ExitCode::FAILURE;
            }
        }
    }
    let text = serialize::cluster_manifest_to_string(&manifest);
    print!("{text}");
    if let Some(file) = flag(args, "--manifest") {
        if let Err(e) = std::fs::write(&file, &text) {
            eprintln!("cannot write manifest {file}: {e}");
            for handle in handles {
                handle.shutdown();
            }
            return ExitCode::FAILURE;
        }
        eprintln!("manifest written to {file}");
    }
    eprintln!("type 'quit' (or close stdin) to stop all shards");
    wait_for_quit();
    for handle in handles {
        handle.shutdown();
    }
    ExitCode::SUCCESS
}

/// Health-check every shard of a manifest.
fn cmd_probe(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    let manifest = match serialize::load_cluster_manifest(Path::new(path)) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut degraded = 0usize;
    for entry in &manifest {
        let status = (|| -> Result<String, String> {
            let mut client = Client::connect(entry.addr.as_str()).map_err(|e| e.to_string())?;
            client.ping().map_err(|e| e.to_string())?;
            let arity = client.schema().map_err(|e| e.to_string())?.arity();
            let n = client
                .served_n()
                .map_err(|e| e.to_string())?
                .ok_or("no cardinality handshake")?;
            if n != entry.n {
                return Err(format!("serves n = {n}, manifest declares {}", entry.n));
            }
            Ok(format!("ok (n = {n}, arity = {arity})"))
        })();
        match status {
            Ok(msg) => println!("shard {} @ {}: {msg}", entry.index, entry.addr),
            Err(msg) => {
                degraded += 1;
                println!("shard {} @ {}: DEGRADED: {msg}", entry.index, entry.addr);
            }
        }
    }
    if degraded == 0 {
        println!("cluster healthy: {} shards", manifest.len());
        ExitCode::SUCCESS
    } else {
        println!(
            "cluster degraded: {degraded}/{} shards failing",
            manifest.len()
        );
        ExitCode::FAILURE
    }
}

/// Serve a scatter/gather gateway over a shard cluster.
fn cmd_gateway(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    let addr = flag(args, "--addr").unwrap_or_else(|| "127.0.0.1:4141".to_string());
    let manifest = match serialize::load_cluster_manifest(Path::new(path)) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let remote = match RemoteShardedSummary::connect(&manifest) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot connect cluster: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "connected {} shards, total n = {}",
        remote.num_shards(),
        remote.n()
    );
    match serve(QueryEngine::new(remote), addr.as_str()) {
        Ok(handle) => {
            println!("gateway listening on {}", handle.local_addr());
            eprintln!("type 'quit' (or close stdin) to stop");
            wait_for_quit();
            handle.shutdown();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Write the demo cluster workspace: per-shard blobs, the combined sharded
/// blob (local parity reference), and a localhost manifest.
fn cmd_make_demo(args: &[String]) -> ExitCode {
    let Some(dir) = args.first() else {
        return usage();
    };
    let parsed = (|| -> Result<(usize, usize, u16), String> {
        Ok((
            parsed_flag(args, "--shards", 4)?,
            parsed_flag(args, "--rows", 240)?,
            parsed_flag(args, "--base-port", 4151)?,
        ))
    })();
    let (shards, rows, base_port) = match parsed {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    if let Err(e) = check_port_range(base_port, shards.max(1)) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    let dir = Path::new(dir);
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    let sharded = match demo::demo_summary(rows, shards) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot build demo summary: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = serialize::save_sharded_file(&sharded, &dir.join("sharded.summary")) {
        eprintln!("cannot write sharded.summary: {e}");
        return ExitCode::FAILURE;
    }
    let mut manifest = Vec::new();
    for (i, shard) in sharded.shards().iter().enumerate() {
        let file = dir.join(format!("shard-{i}.summary"));
        if let Err(e) = serialize::save_file(shard, &file) {
            eprintln!("cannot write {}: {e}", file.display());
            return ExitCode::FAILURE;
        }
        manifest.push(ClusterShard {
            index: i,
            n: shard.n(),
            addr: format!("127.0.0.1:{}", base_port + i as u16),
        });
    }
    if let Err(e) = serialize::save_cluster_manifest(&manifest, &dir.join("cluster.manifest")) {
        eprintln!("cannot write cluster.manifest: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "demo cluster written to {}: {} shards, n = {}, ports {}..{}",
        dir.display(),
        sharded.num_shards(),
        sharded.n(),
        base_port,
        base_port + sharded.num_shards() as u16 - 1
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    let rest = &args[1..];
    match command.as_str() {
        "spawn" => cmd_spawn(rest),
        "probe" => cmd_probe(rest),
        "gateway" => cmd_gateway(rest),
        "make-demo" => cmd_make_demo(rest),
        _ => usage(),
    }
}
