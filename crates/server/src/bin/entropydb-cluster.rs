//! `entropydb-cluster` — shard-per-node cluster tooling.
//!
//! ```text
//! entropydb-cluster spawn <sharded summary> [--base-port P] [--manifest FILE]
//!                         [--replicas R] [--control-file FILE]
//!                         [--idle-timeout SECS]
//! entropydb-cluster restart <control file or HOST:PORT>
//! entropydb-cluster probe <manifest>
//! entropydb-cluster gateway <manifest> [--addr HOST:PORT]
//!                           [--connect-timeout SECS] [--probe-timeout SECS]
//!                           [--rehandshake-secs SECS] [--cache-entries N]
//!                           [--control-file FILE]
//! entropydb-cluster make-demo <dir> [--shards N] [--rows R] [--base-port P]
//!                             [--replicas R]
//! entropydb-cluster soak <HOST:PORT> [--clients N] [--pipeline P]
//!                        [--rounds R] [--max-p99-ms MS]
//! entropydb-cluster ingest-drill <HOST:PORT> [--rows N] [--timeout SECS]
//! ```
//!
//! * `spawn` loads a sharded summary (single-file manifest or
//!   `save_sharded_dir` directory) and serves **each shard on its own
//!   port** — `--replicas R` serves each shard from `R` independent
//!   server instances (ports `base-port + shard*R + replica`;
//!   `--base-port 0` picks ephemeral ports) and the written manifest
//!   lists every replica, so a gateway fails over between them.
//!   `--control-file FILE` additionally opens a localhost control
//!   channel (its address is written to `FILE`) accepting `status`,
//!   `restart` (rolling, see below), and `quit` lines. Serves until
//!   stdin reaches EOF or a `quit` line.
//! * `restart` dials a spawn's control channel and triggers a **rolling
//!   restart**: one replica at a time is drained, shut down, and
//!   respawned while the remaining replicas keep answering — a gateway
//!   over the manifest keeps serving throughout (with `--replicas` ≥ 2).
//!   A respawned replica first tries its old port; if the OS still holds
//!   it (TIME_WAIT — std listeners cannot set `SO_REUSEADDR`), it falls
//!   back to an ephemeral port and the manifest file is rewritten.
//! * `probe` health-checks every **replica** of a manifest: dials it,
//!   runs the schema/cardinality handshake, and reports per-replica
//!   status; exits non-zero if any replica is dead or serving the wrong
//!   blob.
//! * `gateway` connects a [`RemoteShardedSummary`] over the manifest and
//!   serves it on one address — a scatter/gather front-end node answering
//!   the ordinary query protocol while fanning out to the shard nodes,
//!   failing over between replicas per its `FailoverConfig` (deadlines
//!   configurable via the flags above). `--rehandshake-secs` starts the
//!   background re-handshake that evicts replicas caught serving a
//!   changed blob. `--cache-entries N` bounds the gather-side probe
//!   cache (default 65536; `0` disables caching), and `--control-file
//!   FILE` opens a localhost control channel (address written to `FILE`)
//!   whose `status` line reports per-replica health, the cache's
//!   hit/miss/coalesced/evicted counters, and the serving side's
//!   operational counters (active/accepted/shed sessions, bytes in/out,
//!   dispatch queue depth).
//! * `soak` storms a running server (typically a gateway) with pipelined
//!   load from one process: `--clients N` raw connections each write
//!   `--pipeline P` count queries per frame for `--rounds R` rounds, and
//!   every reply must be bitwise-identical to a reference answer fetched
//!   up front. Prints throughput and p50/p99 per-frame latency; exits
//!   non-zero on any failed request or (with `--max-p99-ms`) when the p99
//!   breaches the bound — the CI cluster-e2e job's concurrency gate.
//! * `ingest-drill` exercises the streaming-ingest path end to end
//!   against a live server or a gateway fronting one: it appends `--rows`
//!   deterministic rows with an idempotency token, waits for the
//!   background fold to publish (polling `stats ingest` until the epoch
//!   advances and the staging buffer drains), verifies `COUNT(*)` grew by
//!   exactly the appended rows, and replays the same append to verify the
//!   token window absorbs the duplicate. Exits non-zero on any violation
//!   — the CI cluster-e2e job's ingest gate.
//! * `make-demo` builds a small deterministic sharded summary and writes
//!   everything a localhost cluster walkthrough (or the `cluster-e2e` CI
//!   job) needs: per-shard blobs for `entropydb-serve`, the combined
//!   sharded blob as the local parity reference, a manifest listing
//!   `--replicas` endpoints per shard, and a `live/` directory copy of
//!   the shards that `entropydb-serve --live` can mutate via `a1`
//!   appends (the `ingest-drill` target).

use entropydb_core::engine::QueryEngine;
use entropydb_core::plan::QueryRequest;
use entropydb_core::serialize::{self, ClusterShard};
use entropydb_core::sharded::ShardedSummary;
use entropydb_server::{
    serve_with, Client, FailoverConfig, RemoteShard, RemoteShardedSummary, ServerConfig,
    ServerCounters, ServerHandle,
};
use entropydb_storage::Predicate;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

fn usage() -> ExitCode {
    eprintln!(
        "usage: entropydb-cluster <command>\n\
         \n\
         commands:\n\
         \x20 spawn <sharded summary> [--base-port P] [--manifest FILE]\n\
         \x20       [--replicas R] [--control-file FILE] [--idle-timeout SECS]\n\
         \x20 restart <control file or HOST:PORT>\n\
         \x20 probe <manifest>\n\
         \x20 gateway <manifest> [--addr HOST:PORT] [--connect-timeout SECS]\n\
         \x20         [--probe-timeout SECS] [--rehandshake-secs SECS]\n\
         \x20         [--cache-entries N] [--control-file FILE]\n\
         \x20 make-demo <dir> [--shards N] [--rows R] [--base-port P] [--replicas R]\n\
         \x20 soak <HOST:PORT> [--clients N] [--pipeline P] [--rounds R]\n\
         \x20      [--max-p99-ms MS]\n\
         \x20 ingest-drill <HOST:PORT> [--rows N] [--timeout SECS]"
    );
    ExitCode::from(2)
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Checks that the highest assigned port stays valid (`base_port` 0 means
/// ephemeral and is always fine).
fn check_port_range(base_port: u16, count: usize) -> Result<(), String> {
    if base_port != 0 && (base_port as usize) + count - 1 > u16::MAX as usize {
        return Err(format!(
            "--base-port {base_port} + {count} listeners overflows the port range"
        ));
    }
    Ok(())
}

/// Parses an optional numeric flag, erroring (instead of silently falling
/// back to the default) when the operator passed something unparseable.
fn parsed_flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag(args, name) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("cannot parse {name} value {raw:?}")),
    }
}

/// Parses an optional duration flag given in (possibly fractional)
/// seconds; `None` when the flag is absent.
fn duration_flag(args: &[String], name: &str) -> Result<Option<Duration>, String> {
    match flag(args, name) {
        None => Ok(None),
        Some(raw) => match raw.parse::<f64>() {
            Ok(secs) if secs > 0.0 && secs.is_finite() => Ok(Some(Duration::from_secs_f64(secs))),
            _ => Err(format!("cannot parse {name} value {raw:?}")),
        },
    }
}

fn load_sharded(path: &Path) -> Result<ShardedSummary, String> {
    if path.is_dir() {
        serialize::load_sharded_dir(path).map_err(|e| e.to_string())
    } else {
        serialize::load_sharded_file(path).map_err(|e| e.to_string())
    }
}

/// One serving replica of one shard.
struct Slot {
    addr: String,
    handle: Option<ServerHandle>,
}

/// Everything `spawn` keeps alive: the shard models (for respawning),
/// the serving slots, and the manifest bookkeeping.
struct ClusterState {
    sharded: ShardedSummary,
    /// `slots[shard][replica]`.
    slots: Vec<Vec<Slot>>,
    manifest_path: Option<PathBuf>,
    server_config: ServerConfig,
}

impl ClusterState {
    fn manifest(&self) -> Vec<ClusterShard> {
        self.slots
            .iter()
            .enumerate()
            .map(|(i, replicas)| ClusterShard {
                index: i,
                n: self.sharded.shards()[i].n(),
                addrs: replicas.iter().map(|s| s.addr.clone()).collect(),
            })
            .collect()
    }

    /// Rewrites the manifest file (if one was requested) after a topology
    /// change; errors are reported, not fatal — the in-memory cluster
    /// keeps serving.
    fn rewrite_manifest(&self) -> Result<(), String> {
        if let Some(path) = &self.manifest_path {
            serialize::save_cluster_manifest(&self.manifest(), path)
                .map_err(|e| format!("cannot rewrite manifest {}: {e}", path.display()))?;
        }
        Ok(())
    }

    /// Drains and respawns one replica: graceful shutdown (sessions
    /// disconnect and join), then rebind. The old port is tried first;
    /// when the OS still holds it (TIME_WAIT), the replica comes back on
    /// an ephemeral port instead and the caller rewrites the manifest.
    fn restart_slot(&mut self, shard: usize, replica: usize) -> Result<String, String> {
        let old_addr = self.slots[shard][replica].addr.clone();
        if let Some(handle) = self.slots[shard][replica].handle.take() {
            handle.shutdown();
        }
        let model = self.sharded.shards()[shard].clone();
        let config = self.server_config.clone();
        let handle = match serve_with(QueryEngine::new(model.clone()), old_addr.as_str(), config) {
            Ok(handle) => handle,
            Err(_) => serve_with(
                QueryEngine::new(model),
                "127.0.0.1:0",
                self.server_config.clone(),
            )
            .map_err(|e| format!("shard {shard} replica {replica}: cannot rebind: {e}"))?,
        };
        let new_addr = handle.local_addr().to_string();
        self.slots[shard][replica].addr = new_addr.clone();
        self.slots[shard][replica].handle = Some(handle);
        Ok(format!(
            "restarted shard {shard} replica {replica} {old_addr} -> {new_addr}"
        ))
    }

    fn shutdown_all(&mut self) {
        for replicas in &mut self.slots {
            for slot in replicas {
                if let Some(handle) = slot.handle.take() {
                    handle.shutdown();
                }
            }
        }
    }
}

/// Why `spawn` is exiting: operator request from stdin or the control
/// channel.
enum Exit {
    Quit,
}

/// The control channel of a running `spawn`: a localhost line protocol
/// (`status`, `restart`, `quit`) used by `entropydb-cluster restart` and
/// the e2e suites. Single-command connections are fine; the listener
/// polls so it can observe shutdown.
fn control_loop(
    listener: TcpListener,
    state: Arc<Mutex<ClusterState>>,
    stop: Arc<AtomicBool>,
    exit_tx: mpsc::Sender<Exit>,
) {
    let _ = listener.set_nonblocking(true);
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
            Err(_) => {
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
        let mut writer = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => continue,
        };
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
            let command = line.trim();
            let mut quit_after = false;
            let reply = match command {
                "" => continue,
                "status" => {
                    let state = state.lock().expect("cluster state");
                    let mut out = String::new();
                    for (i, replicas) in state.slots.iter().enumerate() {
                        for (j, slot) in replicas.iter().enumerate() {
                            out.push_str(&format!("shard {i} replica {j} {} up\n", slot.addr));
                        }
                    }
                    out.push_str("ok\n");
                    out
                }
                "restart" => {
                    let mut state = state.lock().expect("cluster state");
                    let mut out = String::new();
                    let mut failed = false;
                    let shards = state.slots.len();
                    'rolling: for i in 0..shards {
                        for j in 0..state.slots[i].len() {
                            match state.restart_slot(i, j) {
                                Ok(msg) => out.push_str(&format!("{msg}\n")),
                                Err(e) => {
                                    out.push_str(&format!("err {e}\n"));
                                    failed = true;
                                    break 'rolling;
                                }
                            }
                        }
                    }
                    if !failed {
                        if let Err(e) = state.rewrite_manifest() {
                            out.push_str(&format!("err {e}\n"));
                            failed = true;
                        }
                    }
                    if !failed {
                        out.push_str("ok\n");
                    }
                    out
                }
                "quit" => {
                    quit_after = true;
                    "ok\n".to_string()
                }
                other => format!("err unknown command {other:?}\n"),
            };
            if writer.write_all(reply.as_bytes()).is_err() || writer.flush().is_err() {
                break;
            }
            if quit_after {
                let _ = exit_tx.send(Exit::Quit);
                return;
            }
        }
    }
}

/// Serve every shard of a sharded summary on its own port(s).
fn cmd_spawn(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    let parsed = (|| -> Result<(u16, usize, Option<Duration>), String> {
        Ok((
            parsed_flag(args, "--base-port", 4151)?,
            parsed_flag(args, "--replicas", 1)?,
            duration_flag(args, "--idle-timeout")?,
        ))
    })();
    let (base_port, replicas, idle_timeout) = match parsed {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    if replicas == 0 {
        eprintln!("error: --replicas must be at least 1");
        return ExitCode::FAILURE;
    }
    let sharded = match load_sharded(Path::new(path)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = check_port_range(base_port, sharded.num_shards() * replicas) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    let server_config = ServerConfig {
        idle_timeout,
        max_sessions: None,
    };
    let mut slots: Vec<Vec<Slot>> = Vec::new();
    for (i, shard) in sharded.shards().iter().enumerate() {
        let mut shard_slots = Vec::new();
        for j in 0..replicas {
            let port = if base_port == 0 {
                0
            } else {
                base_port + (i * replicas + j) as u16
            };
            let engine = QueryEngine::new(shard.clone());
            match serve_with(engine, ("127.0.0.1", port), server_config.clone()) {
                Ok(handle) => {
                    eprintln!(
                        "shard {i} replica {j}: n = {}, serving on {}",
                        shard.n(),
                        handle.local_addr()
                    );
                    shard_slots.push(Slot {
                        addr: handle.local_addr().to_string(),
                        handle: Some(handle),
                    });
                }
                Err(e) => {
                    eprintln!("shard {i} replica {j}: cannot bind port {port}: {e}");
                    for replicas in &mut slots {
                        for slot in replicas {
                            if let Some(handle) = slot.handle.take() {
                                handle.shutdown();
                            }
                        }
                    }
                    for slot in &mut shard_slots {
                        if let Some(handle) = slot.handle.take() {
                            handle.shutdown();
                        }
                    }
                    return ExitCode::FAILURE;
                }
            }
        }
        slots.push(shard_slots);
    }
    let state = Arc::new(Mutex::new(ClusterState {
        sharded,
        slots,
        manifest_path: flag(args, "--manifest").map(PathBuf::from),
        server_config,
    }));
    {
        let mut state = state.lock().expect("cluster state");
        let text = serialize::cluster_manifest_to_string(&state.manifest());
        print!("{text}");
        if let Some(file) = state.manifest_path.clone() {
            if let Err(e) = std::fs::write(&file, &text) {
                eprintln!("cannot write manifest {}: {e}", file.display());
                state.shutdown_all();
                return ExitCode::FAILURE;
            }
            eprintln!("manifest written to {}", file.display());
        }
    }
    let stop = Arc::new(AtomicBool::new(false));
    let (exit_tx, exit_rx) = mpsc::channel::<Exit>();
    let mut control_thread = None;
    if let Some(file) = flag(args, "--control-file") {
        match TcpListener::bind("127.0.0.1:0") {
            Ok(listener) => {
                let addr = listener.local_addr().expect("control addr");
                if let Err(e) = std::fs::write(&file, format!("{addr}\n")) {
                    eprintln!("cannot write control file {file}: {e}");
                    state.lock().expect("cluster state").shutdown_all();
                    return ExitCode::FAILURE;
                }
                eprintln!("control channel on {addr} (written to {file})");
                let state = Arc::clone(&state);
                let stop = Arc::clone(&stop);
                let exit_tx = exit_tx.clone();
                control_thread = Some(std::thread::spawn(move || {
                    control_loop(listener, state, stop, exit_tx)
                }));
            }
            Err(e) => {
                eprintln!("cannot bind control channel: {e}");
                state.lock().expect("cluster state").shutdown_all();
                return ExitCode::FAILURE;
            }
        }
    }
    // Stdin watcher: EOF or a `quit` line ends the cluster, exactly like a
    // control-channel `quit`.
    {
        let exit_tx = exit_tx.clone();
        std::thread::spawn(move || {
            let stdin = std::io::stdin();
            for line in stdin.lock().lines() {
                match line {
                    Ok(l) if l.trim() == "quit" => break,
                    Ok(_) => continue,
                    Err(_) => break,
                }
            }
            let _ = exit_tx.send(Exit::Quit);
        });
    }
    eprintln!("type 'quit' (or close stdin) to stop all shards");
    let _ = exit_rx.recv();
    stop.store(true, Ordering::SeqCst);
    state.lock().expect("cluster state").shutdown_all();
    if let Some(thread) = control_thread {
        let _ = thread.join();
    }
    ExitCode::SUCCESS
}

/// Resolves the `restart` operand: a file written by `spawn
/// --control-file`, or a literal `HOST:PORT`.
fn control_addr(operand: &str) -> Result<String, String> {
    let path = Path::new(operand);
    if path.exists() {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read control file {operand}: {e}"))?;
        let addr = text.trim();
        if addr.is_empty() {
            return Err(format!("control file {operand} is empty"));
        }
        Ok(addr.to_string())
    } else {
        Ok(operand.to_string())
    }
}

/// Trigger a rolling restart over a spawn's control channel.
fn cmd_restart(args: &[String]) -> ExitCode {
    let Some(operand) = args.first() else {
        return usage();
    };
    let addr = match control_addr(operand) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let stream = match TcpStream::connect(&addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot connect control channel {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if writer.write_all(b"restart\n").is_err() || writer.flush().is_err() {
        eprintln!("cannot send restart command");
        return ExitCode::FAILURE;
    }
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => {
                eprintln!("control channel closed before completion");
                return ExitCode::FAILURE;
            }
            Ok(_) => {}
        }
        let msg = line.trim();
        if msg == "ok" {
            println!("rolling restart complete");
            return ExitCode::SUCCESS;
        }
        if let Some(err) = msg.strip_prefix("err ") {
            eprintln!("rolling restart failed: {err}");
            return ExitCode::FAILURE;
        }
        println!("{msg}");
    }
}

/// Health-check every replica of every shard of a manifest.
fn cmd_probe(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    let manifest = match serialize::load_cluster_manifest(Path::new(path)) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut dead = 0usize;
    let mut total = 0usize;
    for entry in &manifest {
        for (j, addr) in entry.addrs.iter().enumerate() {
            total += 1;
            let status = (|| -> Result<String, String> {
                let mut client = Client::connect(addr.as_str()).map_err(|e| e.to_string())?;
                client.ping().map_err(|e| e.to_string())?;
                let arity = client.schema().map_err(|e| e.to_string())?.arity();
                let n = client
                    .served_n()
                    .map_err(|e| e.to_string())?
                    .ok_or("no cardinality handshake")?;
                if n != entry.n {
                    return Err(format!("serves n = {n}, manifest declares {}", entry.n));
                }
                Ok(format!("ok (n = {n}, arity = {arity})"))
            })();
            match status {
                Ok(msg) => println!("shard {} replica {j} @ {addr}: {msg}", entry.index),
                Err(msg) => {
                    dead += 1;
                    println!("shard {} replica {j} @ {addr}: DEAD: {msg}", entry.index);
                }
            }
        }
    }
    if dead == 0 {
        println!(
            "cluster healthy: {} shards, {total} replicas",
            manifest.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("cluster degraded: {dead}/{total} replicas failing");
        ExitCode::FAILURE
    }
}

/// The control channel of a running `gateway`: a localhost line protocol
/// (`status`, `quit`) mirroring the spawn control channel. `status`
/// reports every replica's health, the probe-cache counters, and the
/// serving side's operational counters, so a soak run (or the e2e suite)
/// can watch hit rates, shed counts, and queue depth without
/// instrumenting the query path.
fn gateway_control_loop(
    listener: TcpListener,
    shards: Arc<Vec<RemoteShard>>,
    cache: Option<Arc<entropydb_core::scatter::GatherCache>>,
    server: Arc<ServerCounters>,
    stop: Arc<AtomicBool>,
    exit_tx: mpsc::Sender<Exit>,
) {
    let _ = listener.set_nonblocking(true);
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
        let mut writer = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => continue,
        };
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
            let command = line.trim();
            let mut quit_after = false;
            let reply = match command {
                "" => continue,
                "status" => {
                    let mut out = String::new();
                    for shard in shards.iter() {
                        for (j, replica) in shard.replicas().iter().enumerate() {
                            let state = if replica.is_evicted() {
                                "evicted"
                            } else if replica.breaker_open() {
                                "breaker-open"
                            } else {
                                "up"
                            };
                            out.push_str(&format!(
                                "shard {} replica {j} {} {state}\n",
                                shard.index(),
                                replica.addr()
                            ));
                        }
                    }
                    match &cache {
                        Some(cache) => {
                            let s = cache.snapshot();
                            out.push_str(&format!(
                                "cache hits {} misses {} coalesced {} evicted {}\n",
                                s.hits, s.misses, s.coalesced, s.evicted
                            ));
                        }
                        None => out.push_str("cache off\n"),
                    }
                    let s = server.snapshot();
                    out.push_str(&format!(
                        "server active {} accepted {} shed {} bytes-in {} bytes-out {} queue {}\n",
                        s.active_sessions,
                        s.accepted_total,
                        s.shed_total,
                        s.bytes_in,
                        s.bytes_out,
                        s.dispatch_depth
                    ));
                    out.push_str("ok\n");
                    out
                }
                "quit" => {
                    quit_after = true;
                    "ok\n".to_string()
                }
                other => format!("err unknown command {other:?}\n"),
            };
            if writer.write_all(reply.as_bytes()).is_err() || writer.flush().is_err() {
                break;
            }
            if quit_after {
                let _ = exit_tx.send(Exit::Quit);
                return;
            }
        }
    }
}

/// Serve a scatter/gather gateway over a shard cluster.
fn cmd_gateway(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    let addr = flag(args, "--addr").unwrap_or_else(|| "127.0.0.1:4141".to_string());
    type GatewayFlags = (Option<Duration>, Option<Duration>, Option<Duration>, usize);
    let parsed = (|| -> Result<GatewayFlags, String> {
        Ok((
            duration_flag(args, "--connect-timeout")?,
            duration_flag(args, "--probe-timeout")?,
            duration_flag(args, "--rehandshake-secs")?,
            parsed_flag(args, "--cache-entries", 1 << 16)?,
        ))
    })();
    let (connect_timeout, probe_timeout, rehandshake, cache_entries) = match parsed {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let manifest = match serialize::load_cluster_manifest(Path::new(path)) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut failover = FailoverConfig::default();
    if connect_timeout.is_some() {
        failover.connect_timeout = connect_timeout;
    }
    if probe_timeout.is_some() {
        failover.probe_timeout = probe_timeout;
    }
    let mut remote = match RemoteShardedSummary::connect_with(&manifest, failover) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot connect cluster: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(interval) = rehandshake {
        remote.start_rehandshake(interval);
        eprintln!("background re-handshake every {interval:?}");
    }
    if cache_entries > 0 {
        remote.enable_probe_cache(cache_entries);
        eprintln!("gather-side probe cache: {cache_entries} entries");
    } else {
        eprintln!("gather-side probe cache: disabled");
    }
    eprintln!(
        "connected {} shards, total n = {}",
        remote.num_shards(),
        remote.n()
    );
    // Handles for the control channel, taken before `serve_with` consumes
    // the summary.
    let shards = remote.shard_set();
    let cache = remote.probe_cache().cloned();
    let stop = Arc::new(AtomicBool::new(false));
    let (exit_tx, exit_rx) = mpsc::channel::<Exit>();
    // Bind the control listener (and write its address) before serving so
    // a bad control file fails fast; the control thread itself starts
    // after the server is up — its `status` reply reads the live server
    // counters off the handle.
    let mut control_listener = None;
    if let Some(file) = flag(args, "--control-file") {
        match TcpListener::bind("127.0.0.1:0") {
            Ok(listener) => {
                let control_addr = listener.local_addr().expect("control addr");
                if let Err(e) = std::fs::write(&file, format!("{control_addr}\n")) {
                    eprintln!("cannot write control file {file}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("control channel on {control_addr} (written to {file})");
                control_listener = Some(listener);
            }
            Err(e) => {
                eprintln!("cannot bind control channel: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    match serve_with(
        QueryEngine::new(remote),
        addr.as_str(),
        ServerConfig::default(),
    ) {
        Ok(handle) => {
            println!("gateway listening on {}", handle.local_addr());
            let mut control_thread = None;
            if let Some(listener) = control_listener {
                let shards = Arc::clone(&shards);
                let cache = cache.clone();
                let server = handle.counters();
                let stop = Arc::clone(&stop);
                let exit_tx = exit_tx.clone();
                control_thread = Some(std::thread::spawn(move || {
                    gateway_control_loop(listener, shards, cache, server, stop, exit_tx)
                }));
            }
            eprintln!("type 'quit' (or close stdin) to stop");
            // Stdin watcher: EOF or a `quit` line stops the gateway,
            // exactly like a control-channel `quit`.
            std::thread::spawn(move || {
                wait_for_quit();
                let _ = exit_tx.send(Exit::Quit);
            });
            let _ = exit_rx.recv();
            stop.store(true, Ordering::SeqCst);
            handle.shutdown();
            if let Some(thread) = control_thread {
                let _ = thread.join();
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn wait_for_quit() {
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(l) if l.trim() == "quit" => break,
            Ok(_) => continue,
            Err(_) => break,
        }
    }
}

/// One soak connection: a raw socket plus its buffered read half.
struct SoakConn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

fn soak_connect(addr: &str) -> Result<SoakConn, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("cannot connect {addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| format!("cannot clone socket: {e}"))?,
    );
    Ok(SoakConn { stream, reader })
}

/// Storm a running server with pipelined frames from many raw
/// connections, checking every reply bitwise against a reference answer.
fn cmd_soak(args: &[String]) -> ExitCode {
    let Some(addr) = args.first() else {
        return usage();
    };
    let parsed = (|| -> Result<(usize, usize, usize, Option<f64>), String> {
        Ok((
            parsed_flag(args, "--clients", 64)?,
            parsed_flag(args, "--pipeline", 16)?,
            parsed_flag(args, "--rounds", 10)?,
            match flag(args, "--max-p99-ms") {
                None => None,
                Some(raw) => match raw.parse::<f64>() {
                    Ok(ms) if ms > 0.0 && ms.is_finite() => Some(ms),
                    _ => return Err(format!("cannot parse --max-p99-ms value {raw:?}")),
                },
            },
        ))
    })();
    let (clients, pipeline, rounds, max_p99_ms) = match parsed {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    if clients == 0 || pipeline == 0 || rounds == 0 {
        eprintln!("error: --clients, --pipeline, and --rounds must be at least 1");
        return ExitCode::FAILURE;
    }
    let query = format!("{}\n", QueryRequest::count(Predicate::all()).encode());

    // Reference answer: one clean request/response up front. Every soak
    // reply must match it byte for byte.
    let expected = match (|| -> Result<String, String> {
        let mut conn = soak_connect(addr)?;
        conn.stream
            .write_all(query.as_bytes())
            .map_err(|e| format!("cannot send reference query: {e}"))?;
        let mut line = String::new();
        conn.reader
            .read_line(&mut line)
            .map_err(|e| format!("cannot read reference reply: {e}"))?;
        let trimmed = line.trim_end_matches('\n');
        if !trimmed.starts_with("r1 ") || trimmed.starts_with("r1 err") {
            return Err(format!("reference query failed: {trimmed:?}"));
        }
        Ok(trimmed.to_string())
    })() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut conns = Vec::with_capacity(clients);
    for i in 0..clients {
        match soak_connect(addr) {
            Ok(c) => conns.push(c),
            Err(e) => {
                eprintln!("client {i}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    eprintln!(
        "soaking {addr}: {clients} clients x {pipeline} pipelined x {rounds} rounds \
         = {} requests",
        clients * pipeline * rounds
    );

    let frame = query.repeat(pipeline);
    let mut failures = 0usize;
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(clients * rounds);
    let started = Instant::now();
    let mut line = String::new();
    for _ in 0..rounds {
        // Write the whole round first: every client gets a full pipelined
        // frame on the wire before any reply is drained, so the server
        // sees genuinely concurrent frames.
        for conn in &mut conns {
            if conn.stream.write_all(frame.as_bytes()).is_err() {
                failures += pipeline;
            }
        }
        for conn in &mut conns {
            let frame_started = Instant::now();
            for _ in 0..pipeline {
                line.clear();
                match conn.reader.read_line(&mut line) {
                    Ok(n) if n > 0 => {
                        if line.trim_end_matches('\n') != expected {
                            failures += 1;
                        }
                    }
                    _ => {
                        failures += 1;
                    }
                }
            }
            latencies_ms.push(frame_started.elapsed().as_secs_f64() * 1e3);
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    for conn in &mut conns {
        let _ = conn.stream.write_all(b"quit\n");
    }

    let total = clients * pipeline * rounds;
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let pct = |p: f64| latencies_ms[((latencies_ms.len() - 1) as f64 * p) as usize];
    let (p50, p99) = (pct(0.50), pct(0.99));
    println!(
        "soak complete: {total} requests in {elapsed:.2}s ({:.0} req/s), \
         frame latency p50 {p50:.2}ms p99 {p99:.2}ms, {failures} failed",
        total as f64 / elapsed
    );
    if failures > 0 {
        eprintln!("soak FAILED: {failures}/{total} requests failed");
        return ExitCode::FAILURE;
    }
    if let Some(bound) = max_p99_ms {
        if p99 > bound {
            eprintln!("soak FAILED: p99 {p99:.2}ms breaches --max-p99-ms {bound}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Write the demo cluster workspace: per-shard blobs, the combined sharded
/// blob (local parity reference), and a localhost manifest (optionally
/// with several replica endpoints per shard).
fn cmd_make_demo(args: &[String]) -> ExitCode {
    let Some(dir) = args.first() else {
        return usage();
    };
    let parsed = (|| -> Result<(usize, usize, u16, usize), String> {
        Ok((
            parsed_flag(args, "--shards", 4)?,
            parsed_flag(args, "--rows", 240)?,
            parsed_flag(args, "--base-port", 4151)?,
            parsed_flag(args, "--replicas", 1)?,
        ))
    })();
    let (shards, rows, base_port, replicas) = match parsed {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    if replicas == 0 {
        eprintln!("error: --replicas must be at least 1");
        return ExitCode::FAILURE;
    }
    if let Err(e) = check_port_range(base_port, shards.max(1) * replicas) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    let dir = Path::new(dir);
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    let sharded = match entropydb_server::demo::demo_summary(rows, shards) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot build demo summary: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = serialize::save_sharded_file(&sharded, &dir.join("sharded.summary")) {
        eprintln!("cannot write sharded.summary: {e}");
        return ExitCode::FAILURE;
    }
    let mut manifest = Vec::new();
    for (i, shard) in sharded.shards().iter().enumerate() {
        let file = dir.join(format!("shard-{i}.summary"));
        if let Err(e) = serialize::save_file(shard, &file) {
            eprintln!("cannot write {}: {e}", file.display());
            return ExitCode::FAILURE;
        }
        let addrs = (0..replicas)
            .map(|j| format!("127.0.0.1:{}", base_port + (i * replicas + j) as u16))
            .collect();
        manifest.push(ClusterShard {
            index: i,
            n: shard.n(),
            addrs,
        });
    }
    if let Err(e) = serialize::save_cluster_manifest(&manifest, &dir.join("cluster.manifest")) {
        eprintln!("cannot write cluster.manifest: {e}");
        return ExitCode::FAILURE;
    }
    // A live-servable copy of the same shards: `entropydb-serve <dir>/live
    // --live` turns it into a mutable summary that accepts `a1` appends
    // (the ingest-drill target in CI).
    if let Err(e) = serialize::save_sharded_dir(&sharded, &dir.join("live")) {
        eprintln!("cannot write live dir: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "demo cluster written to {}: {} shards x {replicas} replicas, n = {}, ports {}..{}",
        dir.display(),
        sharded.num_shards(),
        sharded.n(),
        base_port,
        base_port + (sharded.num_shards() * replicas) as u16 - 1
    );
    ExitCode::SUCCESS
}

/// Drill the streaming-ingest path of a live server (or a gateway
/// fronting one): append → wait for the background fold → verify the
/// count grew — then replay the append and verify the idempotency token
/// absorbs it.
fn cmd_ingest_drill(args: &[String]) -> ExitCode {
    let Some(addr) = args.first() else {
        return usage();
    };
    let parsed = (|| -> Result<(u64, f64), String> {
        Ok((
            parsed_flag(args, "--rows", 64)?,
            parsed_flag(args, "--timeout", 30.0)?,
        ))
    })();
    let (rows, timeout_secs) = match parsed {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    if rows == 0 || timeout_secs <= 0.0 {
        eprintln!("error: --rows and --timeout must be positive");
        return ExitCode::FAILURE;
    }
    match run_ingest_drill(addr, rows as usize, Duration::from_secs_f64(timeout_secs)) {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("ingest drill FAILED: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_ingest_drill(addr: &str, rows: usize, timeout: Duration) -> Result<String, String> {
    let mut client = Client::connect(addr).map_err(|e| format!("cannot connect {addr}: {e}"))?;
    let schema = client
        .schema()
        .map_err(|e| format!("schema handshake failed: {e}"))?
        .clone();
    let sizes = schema.domain_sizes();
    let before = client
        .ingest_stats()
        .map_err(|e| format!("stats ingest failed: {e}"))?
        .ok_or_else(|| "server reports no live delta shard (start it with --live)".to_string())?;
    let count_all = QueryRequest::count(Predicate::all());
    let count = |client: &mut Client| -> Result<f64, String> {
        match client.execute(&count_all) {
            Ok(entropydb_core::plan::QueryResponse::Estimate(e)) => Ok(e.expectation),
            Ok(other) => Err(format!("unexpected count answer {other:?}")),
            Err(e) => Err(format!("count query failed: {e}")),
        }
    };
    let n_before = count(&mut client)?;

    // Deterministic drill rows spread across the coded domains.
    let batch: Vec<Vec<u32>> = (0..rows)
        .map(|r| {
            sizes
                .iter()
                .enumerate()
                .map(|(i, &d)| ((r * 31 + i * 7 + 3) % d.max(1)) as u32)
                .collect()
        })
        .collect();
    let token = format!("drill-{}-{rows}", std::process::id());
    let outcome = client
        .append(&batch, Some(&token))
        .map_err(|e| format!("append failed: {e}"))?;
    if outcome.duplicate {
        return Err(format!("fresh token {token:?} was reported as a duplicate"));
    }
    if outcome.accepted != rows as u64 {
        return Err(format!(
            "append accepted {} of {rows} rows",
            outcome.accepted
        ));
    }

    // Wait for the background fold to publish: epoch advances past the
    // baseline and the staging buffer drains.
    let deadline = Instant::now() + timeout;
    let folded = loop {
        let stats = client
            .ingest_stats()
            .map_err(|e| format!("stats ingest poll failed: {e}"))?
            .ok_or_else(|| "live delta shard vanished mid-drill".to_string())?;
        if stats.epoch > before.epoch && stats.staged_rows == 0 {
            break stats;
        }
        if Instant::now() >= deadline {
            return Err(format!(
                "fold did not publish within {timeout:?} \
                 (epoch {} -> {}, staged {})",
                before.epoch, stats.epoch, stats.staged_rows
            ));
        }
        std::thread::sleep(Duration::from_millis(20));
    };

    let n_after = count(&mut client)?;
    let grew = n_after - n_before;
    if (grew - rows as f64).abs() > 1e-6 * n_after.max(1.0) {
        return Err(format!(
            "COUNT(*) grew by {grew} after folding {rows} appended rows \
             ({n_before} -> {n_after})"
        ));
    }

    // Replay: the same token must be absorbed without re-ingesting.
    let replay = client
        .append(&batch, Some(&token))
        .map_err(|e| format!("replayed append failed: {e}"))?;
    if !replay.duplicate {
        return Err("replayed token was ingested again (idempotency hole)".to_string());
    }
    let n_replay = count(&mut client)?;
    if (n_replay - n_after).abs() > 1e-9 * n_after.max(1.0) {
        return Err(format!("replay changed COUNT(*): {n_after} -> {n_replay}"));
    }
    client.quit();
    Ok(format!(
        "ingest drill passed: {rows} rows appended and folded \
         (epoch {} -> {}, n {n_before} -> {n_after}), replay absorbed",
        before.epoch, folded.epoch
    ))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    let rest = &args[1..];
    match command.as_str() {
        "spawn" => cmd_spawn(rest),
        "restart" => cmd_restart(rest),
        "probe" => cmd_probe(rest),
        "gateway" => cmd_gateway(rest),
        "make-demo" => cmd_make_demo(rest),
        "soak" => cmd_soak(rest),
        "ingest-drill" => cmd_ingest_drill(rest),
        _ => usage(),
    }
}
