//! Shared fixtures for the scatter/gather integration suites: a
//! deterministic relation, shard-server spawning, and the bitwise parity
//! harness comparing a remote cluster against the local sharded backend.

// Each test target compiles its own copy of this module and uses a
// different subset of the fixtures.
#![allow(dead_code)]

use entropydb_core::engine::{QueryEngine, SummaryBackend};
use entropydb_core::plan::QueryRequest;
use entropydb_core::serialize::ClusterShard;
use entropydb_core::sharded::ShardedSummary;
use entropydb_server::{demo, serve, FailoverConfig, ServerHandle};
use entropydb_storage::{AttrId, Predicate};
use std::time::Duration;

pub fn a(i: usize) -> AttrId {
    AttrId(i)
}

/// A failover policy tightened for tests: short deadlines and cooldowns so
/// dead-node paths resolve in milliseconds instead of seconds, with the
/// same classification and budget structure as the default.
pub fn fast_failover() -> FailoverConfig {
    FailoverConfig {
        connect_timeout: Some(Duration::from_millis(500)),
        probe_timeout: Some(Duration::from_secs(2)),
        attempts_per_replica: 2,
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(20),
        breaker_threshold: 3,
        breaker_cooldown: Duration::from_millis(100),
        breaker_cooldown_cap: Duration::from_millis(400),
    }
}

/// The deterministic demo relation — the same generator `entropydb-cluster
/// make-demo` ships, so the fixtures and the walkthrough cannot drift.
pub fn sharded(num_shards: usize) -> ShardedSummary {
    demo::demo_summary(240, num_shards).unwrap()
}

/// Serves every shard of `summary` on its own ephemeral localhost port
/// (one in-process server per shard — the same protocol surface as N
/// `entropydb-serve` processes) and returns the handles plus the cluster
/// manifest pointing at them.
pub fn serve_shards(summary: &ShardedSummary) -> (Vec<ServerHandle>, Vec<ClusterShard>) {
    let (handles, manifest) = serve_replicated(summary, 1);
    (handles.into_iter().flatten().collect(), manifest)
}

/// Serves every shard from `replicas` independent in-process servers
/// (each over its own clone of the shard model — the wire-visible shape
/// of a replicated cluster) and returns the handles per shard plus the
/// v2 manifest listing every replica.
pub fn serve_replicated(
    summary: &ShardedSummary,
    replicas: usize,
) -> (Vec<Vec<ServerHandle>>, Vec<ClusterShard>) {
    let mut handles = Vec::new();
    let mut manifest = Vec::new();
    for (i, shard) in summary.shards().iter().enumerate() {
        let mut shard_handles = Vec::new();
        let mut addrs = Vec::new();
        for _ in 0..replicas {
            let handle = serve(QueryEngine::new(shard.clone()), "127.0.0.1:0").unwrap();
            addrs.push(handle.local_addr().to_string());
            shard_handles.push(handle);
        }
        manifest.push(ClusterShard {
            index: i,
            n: shard.n(),
            addrs,
        });
        handles.push(shard_handles);
    }
    (handles, manifest)
}

/// Every `QueryRequest` variant, plus edge shapes (empty predicate,
/// explicit never, multi-clause predicates, a k larger than the domain).
pub fn requests() -> Vec<QueryRequest> {
    let pred = Predicate::new().eq(a(0), 1);
    let range = Predicate::new()
        .between(a(2), 1, 5)
        .in_set(a(1), vec![0, 2, 4]);
    let never = Predicate::new().in_set(a(1), vec![]);
    vec![
        QueryRequest::probability(pred.clone()),
        QueryRequest::probability(Predicate::all()),
        QueryRequest::count(pred.clone()),
        QueryRequest::count(range.clone()),
        QueryRequest::count(never.clone()),
        QueryRequest::sum(pred.clone(), a(2)),
        QueryRequest::sum(range.clone(), a(2)),
        QueryRequest::avg(pred.clone(), a(2)),
        QueryRequest::avg(never, a(2)),
        QueryRequest::group_by(pred.clone(), a(1)),
        QueryRequest::group_by(Predicate::all(), a(2)),
        QueryRequest::group_by2(range, a(0), a(1)),
        QueryRequest::top_k(Predicate::all(), a(1), 2),
        QueryRequest::top_k(pred, a(2), 3),
        QueryRequest::top_k(Predicate::all(), a(0), 99),
        QueryRequest::sample_rows(30, 7),
        QueryRequest::sample_rows(13, 12345),
    ]
}

/// Asserts that `remote` answers every request bitwise-identically to
/// `local`: responses are compared through their wire encodings, which use
/// shortest-round-trip float formatting — equal strings ⇔ equal bits.
pub fn assert_bitwise_parity<L, R>(local: &QueryEngine<L>, remote: &QueryEngine<R>)
where
    L: SummaryBackend,
    R: SummaryBackend,
{
    for req in requests() {
        let expected = local.execute(&req).unwrap();
        let got = remote.execute(&req).unwrap();
        assert_eq!(
            got.encode(),
            expected.encode(),
            "remote response differs for {}",
            req.encode()
        );
    }
    // The batch path must agree with the singles, element for element.
    let reqs = requests();
    let batched = remote.execute_batch(&reqs);
    assert_eq!(batched.len(), reqs.len());
    for (req, outcome) in reqs.iter().zip(batched) {
        let expected = local.execute(req).unwrap();
        assert_eq!(
            outcome.unwrap().encode(),
            expected.encode(),
            "batched remote response differs for {}",
            req.encode()
        );
    }
}
