//! Multi-process cluster end-to-end: real `entropydb-serve` shard
//! *processes* (not in-process servers) behind the remote scatter/gather
//! backend, checked bitwise against the local sharded backend loaded from
//! the same blobs.
//!
//! Two modes:
//!
//! * **self-contained** (default, plain `cargo test`): the test builds the
//!   demo cluster workspace itself, spawns one `entropydb-serve` child per
//!   shard on an ephemeral-ish port, runs the parity suite, and tears the
//!   children down — failing if any child outlives the teardown.
//! * **attach** (`ENTROPYDB_CLUSTER_DIR=<dir>`): the CI `cluster-e2e` job
//!   launches the shard processes itself (from `entropydb-cluster
//!   make-demo` output) and points the test at the workspace; the test
//!   attaches to the running cluster and runs the same parity suite
//!   without spawning or killing anything.

mod common;

use entropydb_core::engine::QueryEngine;
use entropydb_core::serialize;
use entropydb_server::RemoteShardedSummary;
use std::io::Write as _;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const SHARDS: usize = 4;

/// Builds the on-disk cluster workspace the same way `entropydb-cluster
/// make-demo` does: per-shard blobs, the combined sharded blob, and a
/// manifest (here with port 0 placeholders — the spawner fills real ports).
fn write_workspace(dir: &Path) -> entropydb_core::sharded::ShardedSummary {
    std::fs::create_dir_all(dir).unwrap();
    let sharded = common::sharded(SHARDS);
    serialize::save_sharded_file(&sharded, &dir.join("sharded.summary")).unwrap();
    for (i, shard) in sharded.shards().iter().enumerate() {
        serialize::save_file(shard, &dir.join(format!("shard-{i}.summary"))).unwrap();
    }
    sharded
}

struct ShardProcess {
    child: Child,
    addr: String,
}

impl ShardProcess {
    /// Spawns one `entropydb-serve` process for a shard blob and waits
    /// until its port accepts connections.
    fn spawn(blob: &Path, port: u16) -> ShardProcess {
        let addr = format!("127.0.0.1:{port}");
        let child = Command::new(env!("CARGO_BIN_EXE_entropydb-serve"))
            .arg(blob)
            .arg("--addr")
            .arg(&addr)
            .stdin(Stdio::piped())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn entropydb-serve");
        let mut proc = ShardProcess { child, addr };
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if TcpStream::connect(&proc.addr).is_ok() {
                return proc;
            }
            if let Ok(Some(status)) = proc.child.try_wait() {
                panic!(
                    "shard server on {} exited during startup: {status}",
                    proc.addr
                );
            }
            assert!(
                Instant::now() < deadline,
                "shard server on {} never became reachable",
                proc.addr
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// Graceful stop (a `quit` line on stdin), escalating to SIGKILL; the
    /// child must be reaped either way — an orphan fails the test.
    fn stop(mut self) {
        if let Some(stdin) = self.child.stdin.as_mut() {
            let _ = stdin.write_all(b"quit\n");
            let _ = stdin.flush();
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match self.child.try_wait() {
                Ok(Some(_)) => return,
                Ok(None) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(20))
                }
                _ => break,
            }
        }
        // Escalate; failing to reap would orphan the process.
        let _ = self.child.kill();
        self.child.wait().expect("reap shard server");
    }
}

/// Picks a base port unlikely to collide: derived from the test process id
/// into a high ephemeral-adjacent range.
fn base_port() -> u16 {
    20000 + (std::process::id() % 20000) as u16
}

#[test]
fn cluster_of_serve_processes_matches_local_sharded_bitwise() {
    if let Ok(dir) = std::env::var("ENTROPYDB_CLUSTER_DIR") {
        attach_mode(Path::new(&dir));
        return;
    }
    let dir: PathBuf =
        std::env::temp_dir().join(format!("entropydb-cluster-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let local = write_workspace(&dir);

    // Launch one real entropydb-serve process per shard.
    let base = base_port();
    let mut procs = Vec::new();
    let mut manifest = Vec::new();
    for (i, shard) in local.shards().iter().enumerate() {
        let proc = ShardProcess::spawn(&dir.join(format!("shard-{i}.summary")), base + i as u16);
        manifest.push(serialize::ClusterShard::single(
            i,
            shard.n(),
            proc.addr.clone(),
        ));
        procs.push(proc);
    }
    serialize::save_cluster_manifest(&manifest, &dir.join("cluster.manifest")).unwrap();

    let remote = RemoteShardedSummary::connect(&manifest).unwrap();
    assert_eq!(remote.num_shards(), SHARDS);
    common::assert_bitwise_parity(&QueryEngine::new(local), &QueryEngine::new(remote));

    // Teardown: every child must be reaped (no orphaned shard processes).
    for proc in procs {
        proc.stop();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Attach mode: the cluster is already running (CI launched it); verify it
/// and run the identical parity suite against the same blobs.
fn attach_mode(dir: &Path) {
    let manifest = serialize::load_cluster_manifest(&dir.join("cluster.manifest")).unwrap();
    let local = serialize::load_sharded_file(&dir.join("sharded.summary")).unwrap();
    assert_eq!(manifest.len(), local.num_shards());
    let remote = RemoteShardedSummary::connect(&manifest).unwrap();
    common::assert_bitwise_parity(&QueryEngine::new(local), &QueryEngine::new(remote));
}
