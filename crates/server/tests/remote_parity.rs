//! The remote scatter/gather backend against in-process shard servers:
//! bitwise parity with the local sharded backend on every query variant,
//! handshake validation, degraded-shard failure modes, and transport
//! reconnects.

mod common;

use common::{a, fast_failover, requests, serve_shards, sharded};
use entropydb_core::engine::QueryEngine;
use entropydb_core::error::ModelError;
use entropydb_core::plan::QueryRequest;
use entropydb_core::serialize::ClusterShard;
use entropydb_server::{serve, Client, RemoteShardedSummary};
use entropydb_storage::Predicate;

/// Remote scatter/gather answers every request variant bitwise-identically
/// to the local sharded backend over the same shard models — at 1, 3, and
/// 4 shards (1 exercises the no-merge path, 4 the candidate-union re-probe
/// and stratified sampling).
#[test]
fn remote_cluster_matches_local_sharded_bitwise() {
    for shards in [1usize, 3, 4] {
        let local = sharded(shards);
        let (handles, manifest) = serve_shards(&local);
        let remote = RemoteShardedSummary::connect(&manifest).unwrap();
        assert_eq!(remote.num_shards(), local.num_shards());
        assert_eq!(remote.schema(), local.schema());

        let local_engine = QueryEngine::new(local);
        let remote_engine = QueryEngine::new(remote);
        common::assert_bitwise_parity(&local_engine, &remote_engine);

        for handle in handles {
            handle.shutdown();
        }
    }
}

/// A gateway node — the remote backend served over the ordinary protocol —
/// still answers bitwise-identically (two wire hops, one merge).
#[test]
fn gateway_round_trip_stays_bitwise() {
    let local = sharded(3);
    let (handles, manifest) = serve_shards(&local);
    let remote = RemoteShardedSummary::connect(&manifest).unwrap();
    let gateway = serve(QueryEngine::new(remote), "127.0.0.1:0").unwrap();

    let local_engine = QueryEngine::new(local);
    let mut client = Client::connect(gateway.local_addr()).unwrap();
    for req in requests() {
        let expected = local_engine.execute(&req).unwrap();
        let got = client.execute(&req).unwrap();
        assert_eq!(got.encode(), expected.encode(), "{}", req.encode());
    }
    client.quit();
    gateway.shutdown();
    for handle in handles {
        handle.shutdown();
    }
}

/// The batched mask primitives on the remote backend — `probm`/`countm`
/// wire probes, chunked and pipelined per shard — answer bitwise-
/// identically to the sequential per-mask loop and to the local sharded
/// backend over the same shard models, including batches larger than the
/// client's pipeline chunk (so the fan-out spans multiple wire probes).
#[test]
fn fused_mask_batches_match_per_mask_loop_and_local_bitwise() {
    use entropydb_core::assignment::Mask;
    use entropydb_core::engine::SummaryBackend;

    let local = sharded(3);
    let (handles, manifest) = serve_shards(&local);
    let remote = RemoteShardedSummary::connect(&manifest).unwrap();

    let sizes = local.domain_sizes().to_vec();
    let preds = [
        Predicate::all(),
        Predicate::new().eq(a(0), 1),
        Predicate::new()
            .between(a(2), 1, 5)
            .in_set(a(1), vec![0, 2, 4]),
        Predicate::new().in_set(a(1), vec![]),
        Predicate::new().eq(a(1), 2),
    ];
    let masks: Vec<Mask> = (0..40)
        .map(|i| Mask::from_predicate(&preds[i % preds.len()], &sizes).unwrap())
        .collect();

    let mut rs = remote.make_scratch();
    let mut ls = local.make_scratch();

    let remote_probs = remote.probabilities_under_masks(&masks, &mut rs).unwrap();
    let local_probs = local.probabilities_under_masks(&masks, &mut ls).unwrap();
    assert_eq!(remote_probs.len(), masks.len());
    for (m, (rp, lp)) in masks.iter().zip(remote_probs.iter().zip(&local_probs)) {
        let seq = remote.probability_under_mask(m, &mut rs).unwrap();
        assert_eq!(rp.to_bits(), seq.to_bits(), "batched vs per-mask loop");
        assert_eq!(rp.to_bits(), lp.to_bits(), "remote batch vs local batch");
    }

    let remote_counts = remote.counts_under_masks(&masks, &mut rs).unwrap();
    let local_counts = local.counts_under_masks(&masks, &mut ls).unwrap();
    assert_eq!(remote_counts.len(), masks.len());
    for (m, (rc, lc)) in masks.iter().zip(remote_counts.iter().zip(&local_counts)) {
        let seq = remote.count_under_mask(m, &mut rs).unwrap();
        assert_eq!(rc.expectation.to_bits(), seq.expectation.to_bits());
        assert_eq!(rc.variance.to_bits(), seq.variance.to_bits());
        assert_eq!(rc.expectation.to_bits(), lc.expectation.to_bits());
        assert_eq!(rc.variance.to_bits(), lc.variance.to_bits());
    }

    // Empty batches short-circuit without touching the wire.
    assert!(remote
        .probabilities_under_masks(&[], &mut rs)
        .unwrap()
        .is_empty());
    assert!(remote.counts_under_masks(&[], &mut rs).unwrap().is_empty());

    for handle in handles {
        handle.shutdown();
    }
}

/// With the gather-side probe cache enabled, the remote backend answers
/// every request variant bitwise-identically to the local sharded backend
/// — on a cold cache, and again on a warm cache where repeats are served
/// without touching the wire. At 1 shard the no-merge bypass runs under
/// the cache; at 4 the candidate-union re-probe and batched paths do.
#[test]
fn cached_remote_cluster_stays_bitwise_cold_and_warm() {
    for shards in [1usize, 4] {
        let local = sharded(shards);
        let (handles, manifest) = serve_shards(&local);
        let mut remote = RemoteShardedSummary::connect(&manifest).unwrap();
        remote.enable_probe_cache(1 << 12);
        let cache = std::sync::Arc::clone(remote.probe_cache().unwrap());

        let local_engine = QueryEngine::new(local);
        let remote_engine = QueryEngine::new(remote);
        common::assert_bitwise_parity(&local_engine, &remote_engine);
        let cold = cache.snapshot();
        assert!(cold.misses > 0, "cold pass must populate the cache");

        common::assert_bitwise_parity(&local_engine, &remote_engine);
        let warm = cache.snapshot();
        assert!(
            warm.hits > cold.hits,
            "warm pass must hit the cache ({warm:?} after {cold:?})"
        );
        assert_eq!(remote_engine.cache_stats(), Some(warm));

        for handle in handles {
            handle.shutdown();
        }
    }
}

/// The local sharded backend with a probe cache stays bitwise-identical
/// to its uncached self on every request variant, cold and warm — the
/// serial peek fast paths fold with the exact driver arithmetic.
#[test]
fn cached_local_sharded_stays_bitwise_cold_and_warm() {
    for shards in [1usize, 4] {
        let plain_engine = QueryEngine::new(sharded(shards));
        let cached_engine = QueryEngine::new(sharded(shards).with_probe_cache(1 << 12));
        common::assert_bitwise_parity(&plain_engine, &cached_engine);
        let cold = cached_engine.cache_stats().unwrap();
        assert!(cold.misses > 0, "cold pass must populate the cache");
        common::assert_bitwise_parity(&plain_engine, &cached_engine);
        let warm = cached_engine.cache_stats().unwrap();
        assert!(warm.hits > cold.hits, "warm pass must hit the cache");
        assert_eq!(plain_engine.cache_stats(), None);
    }
}

/// The `stats` session line: a gateway over a cached remote backend
/// reports live cache counters to any client; a plain shard server (no
/// cache to speak of) answers `stats cache none`.
#[test]
fn stats_line_reports_gateway_cache_counters() {
    let local = sharded(2);
    let (handles, manifest) = serve_shards(&local);
    let mut remote = RemoteShardedSummary::connect(&manifest).unwrap();
    remote.enable_probe_cache(1 << 10);
    let gateway = serve(QueryEngine::new(remote), "127.0.0.1:0").unwrap();

    let mut client = Client::connect(gateway.local_addr()).unwrap();
    let idle = client.cache_stats().unwrap().expect("gateway has a cache");
    assert_eq!(idle.hits + idle.misses + idle.coalesced, 0);

    let req = QueryRequest::count(Predicate::new().eq(a(0), 1));
    client.execute(&req).unwrap();
    client.execute(&req).unwrap();
    let warm = client.cache_stats().unwrap().expect("gateway has a cache");
    assert!(warm.misses > 0, "first execution misses");
    assert!(warm.hits > 0, "repeat execution hits");
    client.quit();
    gateway.shutdown();

    // A plain shard node has no gather-side cache.
    let mut shard_client = Client::connect(manifest[0].addrs[0].as_str()).unwrap();
    assert_eq!(shard_client.cache_stats().unwrap(), None);
    shard_client.quit();
    for handle in handles {
        handle.shutdown();
    }
}

/// The connect handshake rejects a manifest whose cardinality does not
/// match what the node actually serves, naming the shard.
#[test]
fn handshake_rejects_wrong_cardinality_and_dead_nodes() {
    let local = sharded(2);
    let (handles, mut manifest) = serve_shards(&local);

    manifest[1].n += 5;
    match RemoteShardedSummary::connect(&manifest) {
        Err(ModelError::Degraded { shard, detail, .. }) => {
            assert_eq!(shard, 1);
            assert!(detail.contains("manifest declares"), "{detail}");
        }
        other => panic!("expected named handshake failure, got {other:?}"),
    }
    manifest[1].n -= 5;

    // A dead node fails the connect with its shard named.
    let dead = vec![ClusterShard::single(0, 1, "127.0.0.1:1")];
    match RemoteShardedSummary::connect(&dead) {
        Err(ModelError::Degraded { shard: 0, .. }) => {}
        other => panic!("expected named connect failure, got {other:?}"),
    }
    for handle in handles {
        handle.shutdown();
    }
}

/// Killing a sole-replica shard mid-stream surfaces per-request
/// `Degraded` errors naming the dead shard — batches return error lines
/// for every request instead of hanging, and healthy work before the kill
/// is unaffected.
#[test]
fn killed_shard_mid_batch_returns_named_errors_not_a_hang() {
    let local = sharded(3);
    let (mut handles, manifest) = serve_shards(&local);
    let remote = RemoteShardedSummary::connect_with(&manifest, fast_failover()).unwrap();
    let engine = QueryEngine::new(remote);

    // Healthy cluster answers a full batch.
    let reqs = requests();
    for outcome in engine.execute_batch(&reqs) {
        outcome.unwrap();
    }

    // Kill shard 1 (server shutdown closes every session socket — the
    // wire-visible effect of a killed process), then run the batch again.
    handles.remove(1).shutdown();
    let outcomes = engine.execute_batch(&reqs);
    assert_eq!(outcomes.len(), reqs.len());
    for (req, outcome) in reqs.iter().zip(outcomes) {
        match outcome {
            Err(ModelError::Degraded { shard, .. }) => {
                assert_eq!(shard, 1, "{}", req.encode())
            }
            other => panic!(
                "{}: expected a degraded-shard error, got {other:?}",
                req.encode()
            ),
        }
    }

    // The engine survives: single requests keep answering (with errors)
    // instead of wedging the scratch pool or the fan-out.
    match engine.execute(&QueryRequest::count(Predicate::all())) {
        Err(ModelError::Degraded { shard: 1, .. }) => {}
        other => panic!("expected a degraded-shard error, got {other:?}"),
    }
    for handle in handles {
        handle.shutdown();
    }
}

/// `Client` reconnect-on-broken-pipe: a server restart on the same address
/// breaks the pooled connection; the next call re-dials transparently and
/// succeeds. Exercised both on a bare `Client` and through the remote
/// backend's per-shard pools.
#[test]
fn client_reconnects_on_broken_pipe() {
    let summary = || {
        let s = sharded(1);
        s.shards()[0].clone()
    };

    // Bare client: execute, restart the server on the same port, execute
    // again — the second call must succeed via reconnect.
    let first = serve(QueryEngine::new(summary()), "127.0.0.1:0").unwrap();
    let addr = first.local_addr();
    let mut client = Client::connect(addr).unwrap();
    let req = QueryRequest::count(Predicate::new().eq(a(0), 1));
    let before = client.execute(&req).unwrap();
    first.shutdown();
    let second = serve(QueryEngine::new(summary()), addr).unwrap();
    let after = client.execute(&req).unwrap();
    assert_eq!(after.encode(), before.encode());

    // Remote backend: its pooled shard connection broke with the restart
    // above; the next fan-out reconnects instead of failing.
    let manifest = vec![ClusterShard::single(0, summary().n(), addr.to_string())];
    let remote = RemoteShardedSummary::connect(&manifest).unwrap();
    let engine = QueryEngine::new(remote);
    let via_remote = engine.execute(&req).unwrap();
    assert_eq!(via_remote.encode(), before.encode());

    second.shutdown();
    let third = serve(QueryEngine::new(summary()), addr).unwrap();
    let after_restart = engine.execute(&req).unwrap();
    assert_eq!(after_restart.encode(), before.encode());
    third.shutdown();
    client.quit();
}

/// Probe admission: oversized sample probes answer on the error channel
/// instead of allocating unboundedly.
#[test]
fn oversized_probes_are_rejected_on_the_error_channel() {
    use entropydb_core::probe::ProbeRequest;
    let local = sharded(1);
    let handle = serve(QueryEngine::new(local.shards()[0].clone()), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();
    let huge = ProbeRequest::SampleAt {
        k: usize::MAX,
        seed: 1,
        indices: vec![0],
    };
    match client.probe(&huge) {
        Err(entropydb_server::ClientError::Model(ModelError::Remote(msg))) => {
            assert!(msg.kind.contains("sample probe"), "{msg}")
        }
        other => panic!("expected probe rejection, got {other:?}"),
    }
    // The session survives the rejection.
    client.ping().unwrap();
    client.quit();
    handle.shutdown();
}
