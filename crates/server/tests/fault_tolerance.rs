//! Fault-tolerance end-to-end suites: replica failover under kills, hung
//! sockets cut off by probe deadlines, corrupted frames, circuit breakers
//! and probation, changed-blob eviction via the background re-handshake,
//! session idle reaping, busy-line load shedding, and the rolling-restart
//! control channel — all checked for the tentpole invariant: **whenever
//! any live replica holds a shard, answers stay bitwise identical to a
//! healthy cluster's.**

mod common;

use common::{a, fast_failover, requests, serve_replicated, sharded};
use entropydb_core::assignment::Mask;
use entropydb_core::engine::{QueryEngine, SummaryBackend};
use entropydb_core::error::ModelError;
use entropydb_core::plan::QueryRequest;
use entropydb_core::scatter::ShardProbe;
use entropydb_core::serialize;
use entropydb_server::fault::{FaultMode, FaultProxy};
use entropydb_server::{
    demo, serve, serve_with, Client, ClientConfig, ClientError, FailoverConfig,
    RemoteShardedSummary, ServerConfig,
};
use entropydb_storage::Predicate;
use std::time::{Duration, Instant};

/// Failover policy for the deadline drills: tight socket deadlines so a
/// black-holed node is cut off in a few hundred milliseconds.
fn deadline_failover() -> FailoverConfig {
    FailoverConfig {
        connect_timeout: Some(Duration::from_millis(300)),
        probe_timeout: Some(Duration::from_millis(300)),
        ..fast_failover()
    }
}

/// Kill a node mid-batch with 2 replicas per shard: the batch completes
/// with **zero failed requests** and every response bitwise-identical to
/// the local backend — at 1, 2, and 4 shards.
#[test]
fn replica_failover_under_load_keeps_answers_bitwise() {
    for shards in [1usize, 2, 4] {
        let local = sharded(shards);
        let (mut handles, manifest) = serve_replicated(&local, 2);
        let remote = RemoteShardedSummary::connect_with(&manifest, fast_failover()).unwrap();
        let engine = QueryEngine::new(remote);
        let local_engine = QueryEngine::new(local);

        // A sustained batch (the "load"), with replica 0 of every shard
        // killed from another thread while the batch is in flight.
        let reqs: Vec<QueryRequest> = (0..12).flat_map(|_| requests()).collect();
        let expected: Vec<String> = reqs
            .iter()
            .map(|r| local_engine.execute(r).unwrap().encode())
            .collect();
        let victims: Vec<_> = handles.iter_mut().map(|h| h.remove(0)).collect();
        let killer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            for victim in victims {
                victim.shutdown();
            }
        });
        let outcomes = engine.execute_batch(&reqs);
        killer.join().unwrap();
        assert_eq!(outcomes.len(), reqs.len());
        for ((req, outcome), expected) in reqs.iter().zip(outcomes).zip(&expected) {
            let got = outcome.unwrap_or_else(|e| {
                panic!(
                    "{shards} shards: {} failed under failover: {e}",
                    req.encode()
                )
            });
            assert_eq!(&got.encode(), expected, "{shards} shards: {}", req.encode());
        }

        // With the first replicas gone for good, the full parity harness
        // still passes through the survivors — failover changed nothing.
        common::assert_bitwise_parity(&local_engine, &engine);

        for shard_handles in handles {
            for handle in shard_handles {
                handle.shutdown();
            }
        }
    }
}

/// A black-holed (hung, not dead) node is cut off by the probe deadline
/// and the query answers through the other replica, within the configured
/// budget — at 1, 2, and 4 shards.
#[test]
fn hung_node_is_cut_off_by_probe_deadline() {
    for shards in [1usize, 2, 4] {
        let local = sharded(shards);
        let (handles, mut manifest) = serve_replicated(&local, 2);
        // Replica 0 of shard 0 is reached through the fault proxy.
        let upstream = manifest[0].addrs[0].parse().unwrap();
        let proxy = FaultProxy::start(upstream).unwrap();
        manifest[0].addrs[0] = proxy.local_addr().to_string();

        let config = deadline_failover();
        let probe_timeout = config.probe_timeout.unwrap();
        let remote = RemoteShardedSummary::connect_with(&manifest, config).unwrap();
        let engine = QueryEngine::new(remote);
        let local_engine = QueryEngine::new(local);

        // Healthy pass first, so a pooled connection to the proxy exists
        // and the hang hits an in-flight probe rather than a fresh dial.
        let req = QueryRequest::count(Predicate::new().eq(a(0), 1));
        let expected = local_engine.execute(&req).unwrap().encode();
        assert_eq!(engine.execute(&req).unwrap().encode(), expected);

        proxy.set_mode(FaultMode::BlackHole);
        let start = Instant::now();
        let got = engine.execute(&req).unwrap();
        let elapsed = start.elapsed();
        assert_eq!(got.encode(), expected, "{shards} shards");
        // Budget: one probe deadline plus failover overhead — nowhere
        // near a hang.
        assert!(
            elapsed < probe_timeout * 6,
            "{shards} shards: hung node took {elapsed:?} to cut off"
        );

        // Subsequent queries prefer the healthy replica: effectively free.
        let again = Instant::now();
        assert_eq!(engine.execute(&req).unwrap().encode(), expected);
        assert!(again.elapsed() < probe_timeout * 2, "{shards} shards");

        proxy.shutdown();
        for shard_handles in handles {
            for handle in shard_handles {
                handle.shutdown();
            }
        }
    }
}

/// Corrupted response frames are a *protocol* failure: the gatherer drops
/// the poisoned transport and fails over — answers stay bitwise-correct,
/// never silently wrong.
#[test]
fn corrupted_frames_fail_over_to_a_healthy_replica() {
    let local = sharded(1);
    let (handles, mut manifest) = serve_replicated(&local, 2);
    let upstream = manifest[0].addrs[0].parse().unwrap();
    let proxy = FaultProxy::start(upstream).unwrap();
    manifest[0].addrs[0] = proxy.local_addr().to_string();

    let remote = RemoteShardedSummary::connect_with(&manifest, fast_failover()).unwrap();
    let engine = QueryEngine::new(remote);
    let local_engine = QueryEngine::new(local);

    let req = QueryRequest::count(Predicate::new().eq(a(0), 1));
    let expected = local_engine.execute(&req).unwrap().encode();
    assert_eq!(engine.execute(&req).unwrap().encode(), expected);

    proxy.set_mode(FaultMode::CorruptResponses);
    // Every request variant answers correctly through the survivor.
    for req in requests() {
        let expected = local_engine.execute(&req).unwrap();
        let got = engine.execute(&req).unwrap();
        assert_eq!(got.encode(), expected.encode(), "{}", req.encode());
    }

    proxy.shutdown();
    for shard_handles in handles {
        for handle in shard_handles {
            handle.shutdown();
        }
    }
}

/// A deterministic server error line fails the call immediately: no
/// client-side re-send, no failover to the other replica — every replica
/// would compute the same error.
#[test]
fn deterministic_probe_errors_never_fail_over() {
    let local = sharded(1);
    let (handles, mut manifest) = serve_replicated(&local, 2);
    let upstream = manifest[0].addrs[0].parse().unwrap();
    let proxy = FaultProxy::start(upstream).unwrap();
    manifest[0].addrs[0] = proxy.local_addr().to_string();

    let remote = RemoteShardedSummary::connect_with(&manifest, fast_failover()).unwrap();
    let shard = &remote.shards()[0];
    let conns_before = proxy.connections_seen();

    // A mask whose arity exceeds the served schema's: the shard answers on
    // its deterministic error channel.
    let sizes = vec![4usize; 8];
    let bad = Mask::from_predicate(&Predicate::new().eq(a(7), 1), &sizes).unwrap();
    match shard.probe_count(&bad, &mut ()) {
        Err(ModelError::Remote(msg)) => {
            assert_eq!(msg.shard, Some(0), "{msg}");
            assert!(msg.to_string().contains("shard 0"), "{msg}");
        }
        other => panic!("expected a deterministic remote error, got {other:?}"),
    }

    // The error was not re-sent: no fresh dial happened through the proxy,
    // the answering replica took no breaker damage, and the healthy
    // replica was never consulted (its pool is untouched).
    assert_eq!(proxy.connections_seen(), conns_before);
    assert_eq!(shard.replicas()[0].consecutive_failures(), 0);
    assert_eq!(shard.replicas()[1].idle_conns(), 0);

    // The replica stays first in rotation: a good probe answers through
    // the proxy again (over a fresh transport — a connection involved in
    // any error is dropped, never pooled) and the other replica still
    // sees no traffic.
    let good = Mask::from_predicate(&Predicate::all(), local.domain_sizes()).unwrap();
    shard.probe_count(&good, &mut ()).unwrap();
    assert_eq!(proxy.connections_seen(), conns_before + 1);
    assert_eq!(shard.replicas()[1].idle_conns(), 0);

    proxy.shutdown();
    for shard_handles in handles {
        for handle in shard_handles {
            handle.shutdown();
        }
    }
}

/// The circuit breaker opens after consecutive failures to a dead sole
/// replica, and the background re-handshake closes it again (probation)
/// once the node comes back — the cluster heals without operator action.
#[test]
fn breaker_opens_on_a_dead_node_and_rehandshake_heals_it() {
    let local = sharded(1);
    let (mut handles, manifest) = serve_replicated(&local, 1);
    let addr: std::net::SocketAddr = manifest[0].addrs[0].parse().unwrap();
    let mut remote = RemoteShardedSummary::connect_with(&manifest, fast_failover()).unwrap();
    let req = QueryRequest::count(Predicate::all());

    {
        let engine_probe = &remote.shards()[0];
        let sizes = local.domain_sizes().to_vec();
        let mask = Mask::from_predicate(&Predicate::all(), &sizes).unwrap();
        engine_probe.probe_count(&mask, &mut ()).unwrap();

        // Kill the only replica: the probe budget (2 attempts) is spent
        // and the failure surfaces as Degraded with the attempt trail.
        handles[0].remove(0).shutdown();
        match engine_probe.probe_count(&mask, &mut ()) {
            Err(ModelError::Degraded {
                shard: 0, detail, ..
            }) => {
                assert!(!detail.is_empty());
            }
            other => panic!("expected degraded shard, got {other:?}"),
        }
        // Two spent attempts on a threshold-3 breaker; one more call
        // opens it.
        let _ = engine_probe.probe_count(&mask, &mut ());
        let replica = &engine_probe.replicas()[0];
        assert!(replica.consecutive_failures() >= 3);
        assert!(replica.breaker_open());
    }

    // Node comes back on the same address; the background re-handshake
    // (probation re-probe) closes the breaker and warms the pool.
    let revived = serve(QueryEngine::new(local.shards()[0].clone()), addr).unwrap();
    remote.start_rehandshake(Duration::from_millis(30));
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let replica = &remote.shards()[0].replicas()[0];
        if replica.consecutive_failures() == 0 && !replica.breaker_open() {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "re-handshake never healed the replica"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    // And the healed cluster answers again.
    QueryEngine::new(remote).execute(&req).unwrap();
    revived.shutdown();
}

/// A replica caught serving a *different blob* (here: a summary with the
/// wrong cardinality) is evicted by the background re-handshake: it can
/// never contribute an answer, so results stay bitwise-correct through
/// the true replica — and once every replica is gone, the failure names
/// the eviction.
#[test]
fn rehandshake_evicts_replica_serving_a_changed_blob() {
    let local = sharded(1);
    let (mut handles, manifest) = serve_replicated(&local, 2);
    let addr1: std::net::SocketAddr = manifest[0].addrs[1].parse().unwrap();
    let mut remote = RemoteShardedSummary::connect_with(&manifest, fast_failover()).unwrap();
    let local_engine = QueryEngine::new(local);

    // Replace replica 1's process with one serving a *different* summary
    // (n = 100 instead of the manifest's n) on the same address.
    handles[0].remove(1).shutdown();
    let wrong = demo::demo_summary(100, 1).unwrap().shards()[0].clone();
    let impostor = serve(QueryEngine::new(wrong), addr1).unwrap();

    remote.start_rehandshake(Duration::from_millis(30));
    let deadline = Instant::now() + Duration::from_secs(10);
    while !remote.shards()[0].replicas()[1].is_evicted() {
        assert!(
            Instant::now() < deadline,
            "re-handshake never evicted the changed blob"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // Bitwise parity holds: the impostor is out of rotation.
    let engine = QueryEngine::new(remote);
    common::assert_bitwise_parity(&local_engine, &engine);

    impostor.shutdown();
    for shard_handles in handles {
        for handle in shard_handles {
            handle.shutdown();
        }
    }
}

/// The gather-side probe cache can never serve a stale answer across a
/// blob swap: cache keys mix in the shard's blob generation, and the
/// wrong-blob eviction (here triggered by the background re-handshake
/// catching an impostor on the preferred replica's address) bumps the
/// generation — every answer cached from the old blob becomes
/// unreachable the instant the swap is detected, and re-probes route to
/// the surviving true replica with bitwise-identical results.
#[test]
fn blob_swap_orphans_cached_answers_before_they_can_go_stale() {
    let local = sharded(1);
    let (mut handles, manifest) = serve_replicated(&local, 2);
    let addr0: std::net::SocketAddr = manifest[0].addrs[0].parse().unwrap();
    let mut remote = RemoteShardedSummary::connect_with(&manifest, fast_failover()).unwrap();
    remote.enable_probe_cache(1 << 12);
    let cache = std::sync::Arc::clone(remote.probe_cache().unwrap());
    let generation_before = remote.shards()[0].blob_generation();

    // Warm the cache through the preferred replica, then prove the
    // repeat is a hit.
    let sizes = local.domain_sizes().to_vec();
    let mask = Mask::from_predicate(&Predicate::new().eq(a(0), 1), &sizes).unwrap();
    let mut scratch = remote.make_scratch();
    let healthy = remote.count_under_mask(&mask, &mut scratch).unwrap();
    let cold = cache.snapshot();
    assert!(cold.misses > 0);
    let repeat = remote.count_under_mask(&mask, &mut scratch).unwrap();
    assert_eq!(repeat.expectation.to_bits(), healthy.expectation.to_bits());
    let warm = cache.snapshot();
    assert!(warm.hits > cold.hits, "repeat must be served by the cache");

    // Swap the preferred replica's blob: kill it and start an impostor
    // serving a different summary on the same address.
    handles[0].remove(0).shutdown();
    let wrong = demo::demo_summary(100, 1).unwrap().shards()[0].clone();
    let impostor = serve(QueryEngine::new(wrong), addr0).unwrap();
    remote.start_rehandshake(Duration::from_millis(30));
    let deadline = Instant::now() + Duration::from_secs(10);
    while !remote.shards()[0].replicas()[0].is_evicted() {
        assert!(
            Instant::now() < deadline,
            "re-handshake never evicted the changed blob"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        remote.shards()[0].blob_generation() > generation_before,
        "wrong-blob eviction must bump the blob generation"
    );

    // Every answer cached from before the swap is orphaned: the same
    // probe misses again and is re-fetched through the surviving true
    // replica — still bitwise the healthy answer, never the impostor's.
    let evicted = cache.snapshot();
    let refetched = remote.count_under_mask(&mask, &mut scratch).unwrap();
    assert_eq!(
        refetched.expectation.to_bits(),
        healthy.expectation.to_bits()
    );
    assert_eq!(refetched.variance.to_bits(), healthy.variance.to_bits());
    let after = cache.snapshot();
    assert!(
        after.misses > evicted.misses,
        "a pre-swap cache entry must not answer after the generation bump"
    );

    // Full-workload parity with the cache still enabled.
    let local_engine = QueryEngine::new(local);
    let engine = QueryEngine::new(remote);
    common::assert_bitwise_parity(&local_engine, &engine);

    impostor.shutdown();
    for shard_handles in handles {
        for handle in shard_handles {
            handle.shutdown();
        }
    }
}

/// Satellite: sessions idle past the configured deadline are closed
/// cleanly (the thread exits and deregisters), and a well-behaved client
/// transparently reconnects on its next query.
#[test]
fn idle_sessions_are_reaped_and_clients_reconnect() {
    let local = sharded(1);
    let config = ServerConfig {
        idle_timeout: Some(Duration::from_millis(150)),
        max_sessions: None,
    };
    let handle = serve_with(
        QueryEngine::new(local.shards()[0].clone()),
        "127.0.0.1:0",
        config,
    )
    .unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();
    let req = QueryRequest::count(Predicate::all());
    let expected = client.execute(&req).unwrap();
    assert_eq!(handle.active_sessions(), 1);

    // Stay silent past the idle deadline: the server reaps the session.
    let deadline = Instant::now() + Duration::from_secs(5);
    while handle.active_sessions() != 0 {
        assert!(Instant::now() < deadline, "idle session never reaped");
        std::thread::sleep(Duration::from_millis(20));
    }

    // The client's next call rides the broken-transport reconnect and
    // succeeds — an idle reap is invisible to a live client.
    let again = client.execute(&req).unwrap();
    assert_eq!(again.encode(), expected.encode());
    assert_eq!(handle.active_sessions(), 1);
    client.quit();
    handle.shutdown();
}

/// Satellite: connections over the session cap are answered with one
/// typed `busy` line and closed — surfaced client-side as
/// [`ModelError::Busy`], never as a hang or a silent drop.
#[test]
fn session_cap_sheds_load_with_a_typed_busy_line() {
    let local = sharded(1);
    let config = ServerConfig {
        idle_timeout: None,
        max_sessions: Some(1),
    };
    let handle = serve_with(
        QueryEngine::new(local.shards()[0].clone()),
        "127.0.0.1:0",
        config,
    )
    .unwrap();
    let mut first = Client::connect(handle.local_addr()).unwrap();
    first.ping().unwrap();
    assert_eq!(handle.active_sessions(), 1);

    let req = QueryRequest::count(Predicate::all());
    let mut second = Client::connect(handle.local_addr()).unwrap();
    match second.execute(&req) {
        Err(ClientError::Model(ModelError::Busy(msg))) => {
            assert!(msg.contains("session capacity"), "{msg}")
        }
        other => panic!("expected a typed busy rejection, got {other:?}"),
    }

    // Capacity frees up when the first session ends; new sessions are
    // admitted again.
    first.quit();
    let deadline = Instant::now() + Duration::from_secs(5);
    while handle.active_sessions() != 0 {
        assert!(Instant::now() < deadline, "session never deregistered");
        std::thread::sleep(Duration::from_millis(10));
    }
    let mut third = Client::connect(handle.local_addr()).unwrap();
    third.execute(&req).unwrap();
    third.quit();
    handle.shutdown();
}

/// Satellite: a bare client's socket deadline cuts off a server that
/// accepts but never answers, and the deadline expiry is *not* blindly
/// retried (the error surfaces).
#[test]
fn hung_server_trips_the_client_read_deadline() {
    // A listener that accepts and never answers.
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let done = Arc::new(AtomicBool::new(false));
    let accepter = {
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            // Hold accepted sockets open (the hang) until the test ends.
            let mut held = Vec::new();
            listener.set_nonblocking(true).unwrap();
            let deadline = Instant::now() + Duration::from_secs(30);
            while !done.load(Ordering::SeqCst) && Instant::now() < deadline {
                if let Ok((stream, _)) = listener.accept() {
                    held.push(stream);
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        })
    };

    let config = ClientConfig {
        connect_timeout: Some(Duration::from_secs(2)),
        read_timeout: Some(Duration::from_millis(200)),
        write_timeout: Some(Duration::from_millis(200)),
    };
    let mut client = Client::connect_with(addr, config).unwrap();
    let start = Instant::now();
    match client.execute(&QueryRequest::count(Predicate::all())) {
        Err(ClientError::Io(e)) => {
            assert!(
                matches!(
                    e.kind(),
                    std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
                ),
                "{e:?}"
            );
        }
        other => panic!("expected a deadline expiry, got {other:?}"),
    }
    let elapsed = start.elapsed();
    assert!(elapsed >= Duration::from_millis(150), "{elapsed:?}");
    assert!(elapsed < Duration::from_secs(5), "{elapsed:?}");
    drop(client);
    done.store(true, Ordering::SeqCst);
    accepter.join().unwrap();
}

/// The spawn control channel end to end: a replicated multi-process
/// cluster, a rolling restart through `entropydb-cluster restart` (one
/// replica drained and respawned at a time — every shard keeps a live
/// replica throughout), and bitwise parity over the rewritten manifest
/// afterwards.
#[test]
fn rolling_restart_over_the_control_channel() {
    use std::process::{Command, Stdio};

    /// Kills and reaps the spawn process if the test panics early.
    struct ChildGuard(Option<std::process::Child>);
    impl Drop for ChildGuard {
        fn drop(&mut self) {
            if let Some(mut child) = self.0.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }

    let dir = std::env::temp_dir().join(format!("entropydb-restart-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let local = sharded(2);
    let blob = dir.join("sharded.summary");
    serialize::save_sharded_file(&local, &blob).unwrap();
    let manifest_path = dir.join("cluster.manifest");
    let control_path = dir.join("control.addr");

    let child = Command::new(env!("CARGO_BIN_EXE_entropydb-cluster"))
        .arg("spawn")
        .arg(&blob)
        .args(["--base-port", "0", "--replicas", "2"])
        .arg("--manifest")
        .arg(&manifest_path)
        .arg("--control-file")
        .arg(&control_path)
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn entropydb-cluster");
    let mut guard = ChildGuard(Some(child));

    // Wait for the manifest and control file, then for every replica to
    // accept connections.
    let deadline = Instant::now() + Duration::from_secs(30);
    let manifest = loop {
        assert!(Instant::now() < deadline, "cluster never came up");
        if control_path.exists() {
            if let Ok(manifest) = serialize::load_cluster_manifest(&manifest_path) {
                if manifest.len() == 2
                    && manifest.iter().all(|s| {
                        s.addrs.len() == 2
                            && s.addrs
                                .iter()
                                .all(|a| std::net::TcpStream::connect(a.as_str()).is_ok())
                    })
                {
                    break manifest;
                }
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    };

    let local_engine = QueryEngine::new(local);
    let remote = RemoteShardedSummary::connect_with(&manifest, fast_failover()).unwrap();
    let engine = QueryEngine::new(remote);
    common::assert_bitwise_parity(&local_engine, &engine);

    // Rolling restart through the control channel.
    let output = Command::new(env!("CARGO_BIN_EXE_entropydb-cluster"))
        .arg("restart")
        .arg(&control_path)
        .output()
        .expect("run restart");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "restart failed: {stdout} {}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(stdout.contains("restarted shard 0 replica 0"), "{stdout}");
    assert!(stdout.contains("restarted shard 1 replica 1"), "{stdout}");
    assert!(stdout.contains("rolling restart complete"), "{stdout}");

    // The (possibly rewritten) manifest reconnects and parity holds over
    // the restarted cluster.
    let manifest_after = serialize::load_cluster_manifest(&manifest_path).unwrap();
    let remote_after =
        RemoteShardedSummary::connect_with(&manifest_after, fast_failover()).unwrap();
    common::assert_bitwise_parity(&local_engine, &QueryEngine::new(remote_after));

    // If every replica kept its address (same-port rebind succeeded), the
    // pre-restart gateway must still be answering bitwise-correctly too.
    let addrs = |m: &[serialize::ClusterShard]| -> Vec<Vec<String>> {
        m.iter().map(|s| s.addrs.clone()).collect()
    };
    if addrs(&manifest) == addrs(&manifest_after) {
        common::assert_bitwise_parity(&local_engine, &engine);
    }

    // Shut the cluster down through the control channel and reap it.
    {
        use std::io::{BufRead, BufReader, Write};
        let control_addr = std::fs::read_to_string(&control_path).unwrap();
        let mut stream = std::net::TcpStream::connect(control_addr.trim()).unwrap();
        stream.write_all(b"quit\n").unwrap();
        stream.flush().unwrap();
        let mut reply = String::new();
        BufReader::new(&stream).read_line(&mut reply).unwrap();
        assert_eq!(reply.trim(), "ok");
    }
    let mut child = guard.0.take().unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match child.try_wait() {
            Ok(Some(status)) => {
                assert!(status.success(), "spawn exited with {status}");
                break;
            }
            Ok(None) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(20)),
            _ => {
                let _ = child.kill();
                child.wait().unwrap();
                panic!("spawn did not exit after control quit");
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
