//! Streaming ingest over the wire: a live (mutable) backend behind real
//! TCP servers, driven through `Client::append` and the remote scatter
//! backend.
//!
//! What must hold end to end:
//!
//! * an `a1` append lands in the live server's delta shard, the background
//!   fold publishes, and COUNT(*) grows by exactly the appended rows;
//! * replaying an idempotency token over the wire is absorbed (client
//!   retries can never double-ingest);
//! * a cluster with a dynamic (`n = 0`) live shard routes appends to the
//!   delta owner and keeps the gather-side cache fresh — every post-fold
//!   answer reflects the grown relation, never a cached stale one.

mod common;

use common::fast_failover;
use entropydb_core::engine::{QueryEngine, SummaryBackend};
use entropydb_core::ingest::{IngestConfig, LiveSummary};
use entropydb_core::serialize::ClusterShard;
use entropydb_core::sharded::ShardedSummary;
use entropydb_core::solver::SolverConfig;
use entropydb_core::statistics::MultiDimStatistic;
use entropydb_server::{demo, serve, Client, RemoteShardedSummary, ServerHandle};
use entropydb_storage::{AttrId, Predicate};
use std::time::{Duration, Instant};

fn a(i: usize) -> AttrId {
    AttrId(i)
}

/// The statistic set `demo::demo_summary` fits with — delta folds must use
/// the same set so the live node is fitted like any demo shard.
fn demo_stats() -> Vec<MultiDimStatistic> {
    vec![
        MultiDimStatistic::cell2d(a(0), 0, a(1), 0).unwrap(),
        MultiDimStatistic::rect2d(a(0), (1, 3), a(2), (0, 3)).unwrap(),
    ]
}

/// Deterministic schema-valid rows for the demo relation (domains 4/5/8).
fn append_batch(count: usize) -> Vec<Vec<u32>> {
    (0..count as u32)
        .map(|i| vec![(i * 7 + 1) % 4, (i * 3 + 2) % 5, (i * 5) % 8])
        .collect()
}

/// Serves `summary`'s shard 0 as a live (mutable) node with background
/// folding after `delta_rows` staged rows; returns the handle and the
/// live node's own base cardinality.
fn serve_live_shard0(summary: &ShardedSummary, delta_rows: usize) -> (ServerHandle, u64) {
    let shard0 = summary.shards()[0].clone();
    let n0 = shard0.n();
    let config = IngestConfig::builder()
        .delta_rows(delta_rows)
        .seal_rows(1 << 20)
        .background(true)
        .build()
        .unwrap();
    let base = ShardedSummary::from_shards(vec![shard0]).unwrap();
    let live = LiveSummary::new(base, demo_stats(), SolverConfig::default(), config).unwrap();
    let handle = serve(QueryEngine::new(live), "127.0.0.1:0").unwrap();
    (handle, n0)
}

/// Polls `stats ingest` until the staging buffer is drained past `epoch`
/// (a fold published) or the deadline passes.
fn wait_for_fold<B: SummaryBackend>(engine: &QueryEngine<B>, after_epoch: u64) -> bool {
    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline {
        if let Some(stats) = engine.ingest_stats() {
            if stats.epoch > after_epoch && stats.staged_rows == 0 {
                return true;
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

fn count_all(client: &mut Client) -> f64 {
    let req = entropydb_core::plan::QueryRequest::count(Predicate::all());
    match client.execute(&req).unwrap() {
        entropydb_core::plan::QueryResponse::Estimate(e) => e.expectation,
        other => panic!("unexpected COUNT(*) answer {other:?}"),
    }
}

/// Direct wire drill: append over TCP, wait for the background fold,
/// verify the count grew exactly — then replay the token and verify the
/// duplicate is absorbed with no further growth.
#[test]
fn wire_append_folds_and_token_replay_is_absorbed() {
    let summary = demo::demo_summary(240, 1).unwrap();
    let (handle, n0) = serve_live_shard0(&summary, 32);
    let mut client = Client::connect(handle.local_addr().to_string()).unwrap();

    let before = client.ingest_stats().unwrap().expect("live server");
    assert_eq!(before.staged_rows, 0);
    assert_eq!(count_all(&mut client) as u64, n0);

    let batch = append_batch(64);
    let outcome = client.append(&batch, Some("e2e-tok-1")).unwrap();
    assert_eq!(outcome.accepted, 64);
    assert!(!outcome.duplicate);

    // The 64-row batch crossed the 32-row threshold: the background fold
    // publishes without any explicit flush.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = client.ingest_stats().unwrap().expect("live server");
        if stats.epoch > before.epoch && stats.staged_rows == 0 {
            break;
        }
        assert!(Instant::now() < deadline, "fold did not publish: {stats:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
    let grown = count_all(&mut client);
    let want = (n0 + 64) as f64;
    assert!(
        (grown - want).abs() < 1e-6 * want,
        "COUNT(*) after fold: {grown} vs {want}"
    );

    // Replay: same rows, same token — absorbed, count unchanged.
    let replay = client.append(&batch, Some("e2e-tok-1")).unwrap();
    assert!(replay.duplicate, "token replay must be absorbed");
    assert_eq!(replay.accepted, 0);
    let after_replay = count_all(&mut client);
    assert_eq!(
        after_replay.to_bits(),
        grown.to_bits(),
        "replay changed the count"
    );
    let stats = client.ingest_stats().unwrap().unwrap();
    assert_eq!(stats.duplicate_appends, 1);

    // Tokenless appends get a client-generated token per wire line, so
    // they land exactly once too.
    let outcome = client.append(&append_batch(8), None).unwrap();
    assert_eq!(outcome.accepted, 8);
    handle.shutdown();
}

/// Oversized appends are rejected by admission control with a typed error
/// (the whole batch, atomically), and the staging buffer stays untouched.
#[test]
fn oversized_wire_append_is_rejected_atomically() {
    let summary = demo::demo_summary(120, 1).unwrap();
    let (handle, _n0) = serve_live_shard0(&summary, 1 << 20);
    let mut client = Client::connect(handle.local_addr().to_string()).unwrap();

    // A row that violates the schema (dest domain is 5) rejects the whole
    // batch: nothing stages, and a follow-up valid append still works.
    let mut bad = append_batch(4);
    bad[2][1] = 99;
    assert!(client.append(&bad, None).is_err());
    let stats = client.ingest_stats().unwrap().unwrap();
    assert_eq!(stats.staged_rows, 0, "rejected batch must not stage rows");
    let ok = client.append(&append_batch(4), None).unwrap();
    assert_eq!(ok.accepted, 4);
    handle.shutdown();
}

/// The cluster drill: shard 0 is a live node declared dynamic (`n = 0`)
/// in the manifest, shard 1 a static base segment. The remote backend
/// routes appends to the delta owner, the fold shows up in merged
/// answers, and the gather-side probe cache never serves a pre-fold
/// count — the zero-stale contract over the wire.
#[test]
fn remote_backend_routes_appends_and_gather_cache_stays_fresh() {
    let summary = demo::demo_summary(240, 2).unwrap();
    let n_total = summary.n();
    let (live_handle, _n0) = serve_live_shard0(&summary, 32);
    let shard1 = summary.shards()[1].clone();
    let n1 = shard1.n();
    let static_handle = serve(QueryEngine::new(shard1), "127.0.0.1:0").unwrap();

    let manifest = vec![
        ClusterShard {
            index: 0,
            // n = 0 declares the dynamic live node: the gatherer adopts
            // whatever cardinality the node reports at each handshake.
            n: 0,
            addrs: vec![live_handle.local_addr().to_string()],
        },
        ClusterShard {
            index: 1,
            n: n1,
            addrs: vec![static_handle.local_addr().to_string()],
        },
    ];
    let mut remote = RemoteShardedSummary::connect_with(&manifest, fast_failover()).unwrap();
    remote.enable_probe_cache(64);
    assert!(remote.shards()[0].is_dynamic());
    assert_eq!(remote.n(), n_total, "dynamic shard adopts the served n");
    let engine = QueryEngine::new(remote);

    // Warm the gather cache and verify repeats are served from it.
    let before = engine.estimate_count(&Predicate::all()).unwrap();
    let repeat = engine.estimate_count(&Predicate::all()).unwrap();
    assert_eq!(before.expectation.to_bits(), repeat.expectation.to_bits());
    assert!((before.expectation - n_total as f64).abs() < 1e-6 * n_total as f64);
    let warm_stats = engine.cache_stats().expect("probe cache enabled");
    assert!(warm_stats.hits >= 1, "repeat must hit the gather cache");

    // Append through the remote backend: routed to the delta owner with a
    // pinned idempotency token.
    let epoch0 = engine.epoch();
    let outcome = engine.append_rows(&append_batch(48), None).unwrap();
    assert_eq!(outcome.accepted, 48);
    assert!(wait_for_fold(&engine, epoch0), "fold did not publish");
    assert!(engine.epoch() > epoch0, "observed epoch must advance");

    // The post-fold merged COUNT(*) must reflect the grown live shard —
    // a stale cached probe would still answer with the pre-fold count.
    let grown = engine
        .estimate_count(&Predicate::all())
        .unwrap()
        .expectation;
    let want = (n_total + 48) as f64;
    assert!(
        (grown - want).abs() < 1e-6 * want,
        "post-fold COUNT(*): {grown} vs {want} (stale cache?)"
    );

    // Token replay through the remote layer is absorbed too.
    let first = engine
        .append_rows(&append_batch(5), Some("cluster-tok"))
        .unwrap();
    assert_eq!(first.accepted, 5);
    let replay = engine
        .append_rows(&append_batch(5), Some("cluster-tok"))
        .unwrap();
    assert!(replay.duplicate);
    assert_eq!(replay.accepted, 0);

    live_handle.shutdown();
    static_handle.shutdown();
}
