//! End-to-end server tests: an ephemeral-port server over both backends,
//! concurrent clients, batch pipelining, the error channel, and graceful
//! shutdown.

use entropydb_core::engine::QueryEngine;
use entropydb_core::error::ModelError;
use entropydb_core::model::MaxEntSummary;
use entropydb_core::plan::{QueryRequest, QueryResponse};
use entropydb_core::sharded::{ShardedBuildConfig, ShardedSummary};
use entropydb_core::solver::SolverConfig;
use entropydb_core::statistics::MultiDimStatistic;
use entropydb_server::{serve, Client};
use entropydb_storage::{AttrId, Attribute, Binner, Partitioning, Predicate, Schema, Table};

fn a(i: usize) -> AttrId {
    AttrId(i)
}

fn table() -> Table {
    let schema = Schema::new(vec![
        Attribute::categorical("origin", 3).unwrap(),
        Attribute::categorical("dest", 4).unwrap(),
        Attribute::binned("distance", Binner::new(0.0, 100.0, 5).unwrap()),
    ]);
    let mut t = Table::new(schema);
    let mut v = 1u32;
    for _ in 0..90 {
        t.push_row(&[v % 3, (v / 3) % 4, (v / 12) % 5]).unwrap();
        v = v.wrapping_mul(7).wrapping_add(3);
    }
    t
}

fn summary() -> MaxEntSummary {
    let stat = MultiDimStatistic::cell2d(a(0), 0, a(1), 0).unwrap();
    MaxEntSummary::build(&table(), vec![stat], &SolverConfig::default()).unwrap()
}

fn sharded() -> ShardedSummary {
    let stat = MultiDimStatistic::cell2d(a(0), 0, a(1), 0).unwrap();
    ShardedSummary::build(
        &table(),
        &Partitioning::hash(3),
        vec![stat],
        &ShardedBuildConfig::default(),
    )
    .unwrap()
}

fn requests() -> Vec<QueryRequest> {
    let pred = Predicate::new().eq(a(0), 1);
    vec![
        QueryRequest::count(pred.clone()),
        QueryRequest::probability(pred.clone()),
        QueryRequest::sum(pred.clone(), a(2)),
        QueryRequest::avg(pred.clone(), a(2)),
        QueryRequest::group_by(pred.clone(), a(1)),
        QueryRequest::group_by2(Predicate::all(), a(0), a(1)),
        QueryRequest::top_k(Predicate::all(), a(1), 3),
        QueryRequest::sample_rows(25, 7),
    ]
}

/// Every IR request answered over TCP equals the in-process engine answer
/// exactly, on both backends.
#[test]
fn served_responses_match_in_process_execution() {
    fn check<B: entropydb_core::engine::SummaryBackend + 'static>(
        name: &str,
        local: QueryEngine<B>,
        served: QueryEngine<B>,
    ) {
        let handle = serve(served, "127.0.0.1:0").unwrap();
        let mut client = Client::connect(handle.local_addr()).unwrap();
        client.ping().unwrap();
        for req in requests() {
            let got = client.execute(&req).unwrap();
            let expected = local.execute(&req).unwrap();
            assert_eq!(got, expected, "{name}: {}", req.encode());
        }
        client.quit();
        handle.shutdown();
    }
    check(
        "monolithic",
        QueryEngine::new(summary()),
        QueryEngine::new(summary()),
    );
    check(
        "sharded",
        QueryEngine::new(sharded()),
        QueryEngine::new(sharded()),
    );
}

/// A textual statement travels statement → parser → IR → TCP → engine and
/// returns the same estimate as the in-process call.
#[test]
fn served_statement_matches_in_process_call() {
    let s = summary();
    let engine = QueryEngine::new(summary());
    let handle = serve(engine, "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();

    // The schema resolver takes categorical codes and raw numeric values.
    let served = client
        .query("COUNT WHERE origin = 1 AND distance >= 40")
        .unwrap();
    let schema = s.schema().clone();
    let req =
        entropydb_core::plan::parse_request("COUNT WHERE origin = 1 AND distance >= 40", &schema)
            .unwrap();
    let pred = req.predicate().unwrap();
    let expected = s.estimate_count(pred).unwrap();
    let got = served.estimate().unwrap();
    assert_eq!(got.expectation.to_bits(), expected.expectation.to_bits());
    assert_eq!(got.variance.to_bits(), expected.variance.to_bits());

    // Other statement shapes execute end-to-end too.
    assert!(client.query("TOP 2 dest").unwrap().ranked().is_some());
    assert!(client
        .query("GROUP BY origin WHERE dest IN (0, 2)")
        .unwrap()
        .groups()
        .is_some());
    assert!(client.query("SAMPLE 10 SEED 3").unwrap().rows().is_some());
    // An unsatisfiable IN () statement answers zero, not an error.
    let zero = client.query("COUNT WHERE origin IN ()").unwrap();
    assert_eq!(zero.estimate().unwrap().expectation, 0.0);
    client.quit();
    handle.shutdown();
}

/// Concurrent clients all get exact answers (sessions share one engine and
/// its scratch pool).
#[test]
fn concurrent_clients_get_consistent_answers() {
    let s = summary();
    let handle = serve(QueryEngine::new(summary()), "127.0.0.1:0").unwrap();
    let addr = handle.local_addr();
    let expected: Vec<QueryResponse> = {
        let engine = QueryEngine::new(s);
        requests()
            .iter()
            .map(|r| engine.execute(r).unwrap())
            .collect()
    };
    let threads: Vec<_> = (0..6)
        .map(|t| {
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for round in 0..10 {
                    let reqs = requests();
                    let i = (t + round) % reqs.len();
                    let got = client.execute(&reqs[i]).unwrap();
                    assert_eq!(got, expected[i], "thread {t} round {round}");
                }
                client.quit();
            })
        })
        .collect();
    for th in threads {
        th.join().unwrap();
    }
    handle.shutdown();
}

/// Batch frames pipeline: one frame, n in-order responses, identical to
/// executing each request alone; undecodable lines answer on the error
/// channel without poisoning the rest of the frame.
#[test]
fn batch_pipelining_and_error_channel() {
    let handle = serve(QueryEngine::new(summary()), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();

    let reqs = requests();
    let batched = client.execute_batch(&reqs).unwrap();
    assert_eq!(batched.len(), reqs.len());
    for (req, got) in reqs.iter().zip(batched) {
        let single = client.execute(req).unwrap();
        assert_eq!(got.unwrap(), single, "{}", req.encode());
    }

    // Out-of-schema requests answer errors but keep the session usable.
    let bad = QueryRequest::count(Predicate::new().eq(a(9), 0));
    match client.execute(&bad) {
        Err(entropydb_server::ClientError::Model(ModelError::Remote(msg))) => {
            assert!(!msg.kind.is_empty())
        }
        other => panic!("expected remote error, got {other:?}"),
    }
    let mixed = vec![bad.clone(), QueryRequest::count(Predicate::all())];
    let outcomes = client.execute_batch(&mixed).unwrap();
    assert!(matches!(outcomes[0], Err(ModelError::Remote(_))));
    assert!(outcomes[1].is_ok());

    // Sample requests beyond the served cap are refused up front (their
    // cost is decoupled from the wire line length), alone and in batches.
    let huge = QueryRequest::sample_rows(usize::MAX, 1);
    match client.execute(&huge) {
        Err(entropydb_server::ClientError::Model(ModelError::Remote(msg))) => {
            assert!(msg.kind.contains("sample size"), "{msg}")
        }
        other => panic!("expected sample-size rejection, got {other:?}"),
    }
    let outcomes = client
        .execute_batch(&[huge, QueryRequest::count(Predicate::all())])
        .unwrap();
    assert!(matches!(outcomes[0], Err(ModelError::Remote(_))));
    assert!(outcomes[1].is_ok());

    // The connection survives all of the above.
    client.ping().unwrap();
    client.quit();
    handle.shutdown();
}

/// Shutdown disconnects live sessions, joins every thread, and stops
/// accepting new connections.
#[test]
fn shutdown_joins_sessions_and_closes_listener() {
    let handle = serve(QueryEngine::new(summary()), "127.0.0.1:0").unwrap();
    let addr = handle.local_addr();

    // A connected, idle client (mid-session, blocked in read).
    let mut idle = Client::connect(addr).unwrap();
    idle.ping().unwrap();
    // Wait until the server has registered the session.
    for _ in 0..100 {
        if handle.active_sessions() > 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert!(handle.active_sessions() > 0);

    // shutdown() must return even though the client never disconnected —
    // proving the session was unblocked and its thread joined.
    handle.shutdown();

    // The dropped server no longer answers: the idle client sees EOF...
    assert!(idle.ping().is_err());
    // ...and fresh connections are refused (or immediately closed).
    match Client::connect(addr) {
        Err(_) => {}
        Ok(mut c) => assert!(c.ping().is_err()),
    }
}

/// Loop-spawn stress for the shutdown path: many rounds of serve → racing
/// client connects → shutdown. A connection accepted after shutdown begins
/// must never leak its session thread: `shutdown` returns only after every
/// spawned session is joined, so the process thread count cannot grow
/// across rounds (checked via /proc on Linux) and no round may hang.
#[test]
fn shutdown_loop_spawn_stress_leaks_no_sessions() {
    fn thread_count() -> Option<usize> {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        status
            .lines()
            .find_map(|l| l.strip_prefix("Threads:"))
            .and_then(|v| v.trim().parse().ok())
    }
    let model = summary();
    let mut baseline: Option<usize> = None;
    for round in 0..24u64 {
        let handle = serve(QueryEngine::new(model.clone()), "127.0.0.1:0").unwrap();
        let addr = handle.local_addr();
        let spawners: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    for _ in 0..8 {
                        // Connects race the shutdown below; failures (refused,
                        // reset, EOF) are the expected outcome mid-shutdown.
                        if let Ok(mut c) = Client::connect(addr) {
                            let _ = c.ping();
                        }
                    }
                })
            })
            .collect();
        // Vary the interleaving so shutdown lands before, during, and
        // after the connect bursts across rounds.
        std::thread::sleep(std::time::Duration::from_millis(round % 3));
        handle.shutdown();
        for s in spawners {
            s.join().unwrap();
        }
        if let Some(n) = thread_count() {
            // Allow slack for lazily spawned runtime threads, but any
            // leaked session thread per round would grow this monotonically.
            let b = *baseline.get_or_insert(n);
            assert!(
                n <= b + 4,
                "thread count grew from {b} to {n} by round {round}: leaked sessions"
            );
        }
    }
}

/// Unknown command words answer on the error channel (raw-socket check).
#[test]
fn unknown_commands_answer_errors() {
    use std::io::{BufRead, BufReader, Write};
    let handle = serve(QueryEngine::new(summary()), "127.0.0.1:0").unwrap();
    let mut stream = std::net::TcpStream::connect(handle.local_addr()).unwrap();
    stream.write_all(b"frobnicate the database\n").unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("r1 err "), "{line:?}");
    // Oversized batch frames are rejected without hanging the session.
    stream.write_all(b"batch 999999999\n").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("r1 err "), "{line:?}");
    handle.shutdown();
}

/// A newline-free byte flood is cut off at the line cap instead of growing
/// the session buffer without bound.
#[test]
fn oversized_lines_end_the_session() {
    use std::io::{Read, Write};
    let handle = serve(QueryEngine::new(summary()), "127.0.0.1:0").unwrap();
    let mut stream = std::net::TcpStream::connect(handle.local_addr()).unwrap();
    let chunk = vec![b'x'; 1 << 16];
    // Write far past MAX_LINE_BYTES without a newline; the server must
    // drop the session (writes start failing or the read returns EOF).
    let mut dropped = false;
    for _ in 0..64 {
        if stream.write_all(&chunk).is_err() {
            dropped = true;
            break;
        }
    }
    if !dropped {
        let _ = stream.flush();
        let mut buf = [0u8; 16];
        // EOF (Ok(0)) or a reset both mean the session ended.
        dropped = !matches!(stream.read(&mut buf), Ok(n) if n > 0);
    }
    assert!(dropped, "server kept buffering a newline-free stream");
    handle.shutdown();
}
