//! Raw-socket protocol suite for the event-driven server core: the same
//! command script delivered byte-at-a-time and as one coalesced write
//! must produce bitwise-identical reply streams, the reactor must match
//! the retained thread-per-connection core transcript-for-transcript, a
//! `MAX_LINE_BYTES` flood must end only the offending session, capacity
//! shedding must answer a readable typed `busy` line, and the
//! `stats server` counters must track real traffic.

mod common;

use entropydb_core::engine::QueryEngine;
use entropydb_core::plan::QueryRequest;
use entropydb_server::{serve, serve_threaded, serve_with, Client, ServerConfig, ServerHandle};
use entropydb_storage::Predicate;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn spawn_reactor() -> ServerHandle {
    serve(QueryEngine::new(common::sharded(3)), "127.0.0.1:0").unwrap()
}

fn spawn_threaded() -> ServerHandle {
    serve_threaded(
        QueryEngine::new(common::sharded(3)),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap()
}

/// A deterministic pipelined session script exercising every reply shape:
/// commands, singles over every request variant, a batch frame, the error
/// channel, a skipped empty line, and `quit`. Cache warmth never changes
/// an answer, so the byte stream it provokes is identical on every run.
fn script() -> String {
    let reqs = common::requests();
    let mut s = String::from("ping\nschema\n");
    for r in &reqs {
        s.push_str(&r.encode());
        s.push('\n');
    }
    s.push_str(&format!("batch {}\n", reqs.len()));
    for r in &reqs {
        s.push_str(&r.encode());
        s.push('\n');
    }
    s.push_str("definitely not a command\n");
    s.push('\n');
    s.push_str("ping\nquit\n");
    s
}

/// Runs `script()` against `addr` over a raw socket and returns the whole
/// reply stream. `dribble` delivers the request bytes one `write(2)` per
/// byte (worst-case partial reads); otherwise the whole script lands in a
/// single coalesced write (worst-case pipelining).
fn transcript(addr: std::net::SocketAddr, dribble: bool) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let payload = script();
    if dribble {
        for b in payload.as_bytes() {
            stream.write_all(std::slice::from_ref(b)).unwrap();
        }
    } else {
        stream.write_all(payload.as_bytes()).unwrap();
    }
    let mut out = Vec::new();
    stream.read_to_end(&mut out).unwrap();
    out
}

/// Byte-at-a-time delivery and one coalesced pipelined write provoke
/// bitwise-identical reply streams from the reactor core.
#[test]
fn dribbled_bytes_and_coalesced_frames_answer_identically() {
    let handle = spawn_reactor();
    let coalesced = transcript(handle.local_addr(), false);
    let dribbled = transcript(handle.local_addr(), true);
    assert!(!coalesced.is_empty());
    assert_eq!(
        dribbled, coalesced,
        "partial-read decoding changed the reply stream"
    );
    handle.shutdown();
}

/// The reactor core and the retained thread-per-connection baseline speak
/// the identical wire protocol: same script, same bytes back.
#[test]
fn reactor_transcript_matches_threaded_core() {
    let reactor = spawn_reactor();
    let threaded = spawn_threaded();
    let from_reactor = transcript(reactor.local_addr(), false);
    let from_threaded = transcript(threaded.local_addr(), false);
    assert!(!from_reactor.is_empty());
    assert_eq!(from_reactor, from_threaded, "cores disagree on the wire");
    reactor.shutdown();
    threaded.shutdown();
}

/// Flooding one session with a newline-free stream past `MAX_LINE_BYTES`
/// ends that session (silently — no reply for the poisoned line) while
/// every other session keeps answering.
#[test]
fn oversized_line_ends_only_the_offending_session() {
    let handle = spawn_reactor();
    let mut good = Client::connect(handle.local_addr()).unwrap();
    good.ping().unwrap();

    let mut bad = TcpStream::connect(handle.local_addr()).unwrap();
    bad.set_nodelay(true).unwrap();
    bad.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let chunk = vec![b'x'; 1 << 16];
    let mut sent = 0u64;
    while sent <= (1 << 20) {
        match bad.write_all(&chunk) {
            Ok(()) => sent += chunk.len() as u64,
            // The server may close mid-flood; that's the point.
            Err(_) => break,
        }
    }
    let mut buf = [0u8; 64];
    match bad.read(&mut buf) {
        Ok(0) => {}
        Ok(_) => panic!("violating session got a reply"),
        Err(e) => panic!("expected EOF on the violating session, got {e}"),
    }

    // The well-behaved session is unaffected.
    good.ping().unwrap();
    let req = QueryRequest::count(Predicate::all());
    good.execute(&req).unwrap();
    handle.shutdown();
}

/// A connection over the session cap reads one typed `busy` line and then
/// EOF, while the admitted session keeps working; the shed shows up in
/// the server counters.
#[test]
fn capacity_shed_answers_typed_busy_line() {
    let engine = QueryEngine::new(common::sharded(3));
    let handle = serve_with(
        engine,
        "127.0.0.1:0",
        ServerConfig {
            idle_timeout: None,
            max_sessions: Some(1),
        },
    )
    .unwrap();
    let mut admitted = Client::connect(handle.local_addr()).unwrap();
    admitted.ping().unwrap();

    let shed = TcpStream::connect(handle.local_addr()).unwrap();
    shed.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(shed);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line, "r1 busy server at session capacity (1)\n");
    drop(reader);

    admitted.ping().unwrap();
    let snap = handle.stats();
    assert!(snap.shed_total >= 1, "shed not counted: {snap:?}");
    assert!(snap.accepted_total >= 2, "accepts not counted: {snap:?}");
    handle.shutdown();
}

/// The `stats server` session command reports live counters that agree
/// with the handle's snapshot, and sessions come off the active gauge
/// once they disconnect.
#[test]
fn stats_server_counters_track_traffic() {
    let handle = spawn_reactor();
    let mut client = Client::connect(handle.local_addr()).unwrap();
    client.ping().unwrap();
    let snap = client.server_stats().unwrap();
    assert!(snap.active_sessions >= 1, "{snap:?}");
    assert!(snap.accepted_total >= 1, "{snap:?}");
    assert!(snap.bytes_in >= "ping\n".len() as u64, "{snap:?}");
    assert!(snap.bytes_out >= "pong\n".len() as u64, "{snap:?}");
    assert_eq!(handle.stats().accepted_total, snap.accepted_total);

    drop(client);
    let deadline = Instant::now() + Duration::from_secs(5);
    while handle.stats().active_sessions > 0 {
        assert!(
            Instant::now() < deadline,
            "disconnected session never left the active gauge: {:?}",
            handle.stats()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    handle.shutdown();
}
