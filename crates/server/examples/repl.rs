//! An interactive client REPL for a running `entropydb-serve`:
//!
//! ```text
//! cargo run -p entropydb-server --example repl -- 127.0.0.1:4141
//! > COUNT WHERE origin = 2
//! count ≈ 118.4   (95% CI 97..140)
//! > TOP 3 dest WHERE distance >= 500
//! #1  value 7   ≈ 421.0
//! ...
//! ```
//!
//! Statements are parsed client-side against the served schema (fetched
//! once per session): binned attributes take raw numeric values,
//! categorical attributes take dense codes.

use entropydb_core::plan::QueryResponse;
use entropydb_server::Client;
use std::io::{BufRead, Write};

fn print_response(resp: &QueryResponse) {
    match resp {
        QueryResponse::Probability(p) => println!("probability = {p:.6}"),
        QueryResponse::Estimate(e) => {
            let (lo, hi) = e.ci95();
            println!(
                "estimate ≈ {:.1}   (95% CI {:.0}..{:.0}, rounded {})",
                e.expectation,
                lo,
                hi,
                e.rounded()
            );
        }
        QueryResponse::Average(None) => println!("avg: undefined (zero-probability predicate)"),
        QueryResponse::Average(Some(v)) => println!("avg ≈ {v:.3}"),
        QueryResponse::Groups(groups) => {
            for (v, e) in groups.iter().enumerate() {
                if e.exists() {
                    println!("value {v:>4}   ≈ {:.1} ± {:.1}", e.expectation, e.std_dev());
                }
            }
            println!("({} groups, zero-rounded ones hidden)", groups.len());
        }
        QueryResponse::Groups2(rows) => {
            for (vb, row) in rows.iter().enumerate() {
                for (va, e) in row.iter().enumerate() {
                    if e.exists() {
                        println!("({va:>3}, {vb:>3})   ≈ {:.1}", e.expectation);
                    }
                }
            }
        }
        QueryResponse::Ranked(entries) => {
            for (rank, (v, e)) in entries.iter().enumerate() {
                println!("#{:<3} value {v:>4}   ≈ {:.1}", rank + 1, e.expectation);
            }
        }
        QueryResponse::Rows { arity: _, rows } => {
            for row in rows.iter().take(20) {
                println!("{row:?}");
            }
            if rows.len() > 20 {
                println!("... ({} rows total)", rows.len());
            }
        }
    }
}

fn main() {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:4141".to_string());
    let mut client = match Client::connect(addr.as_str()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };
    match client.schema() {
        Ok(schema) => {
            println!("connected to {addr}; attributes:");
            for attr in schema.attributes() {
                println!("  {} (domain {})", attr.name(), attr.domain_size());
            }
        }
        Err(e) => {
            eprintln!("cannot fetch schema: {e}");
            std::process::exit(1);
        }
    }
    println!("statements: COUNT / SUM(a) / AVG(a) / GROUP BY a[, b] / TOP k a / SAMPLE k [SEED s]");
    println!("type 'quit' to exit");
    let stdin = std::io::stdin();
    loop {
        print!("> ");
        let _ = std::io::stdout().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let stmt = line.trim();
        if stmt.is_empty() {
            continue;
        }
        if stmt.eq_ignore_ascii_case("quit") {
            break;
        }
        let start = std::time::Instant::now();
        match client.query(stmt) {
            Ok(resp) => {
                print_response(&resp);
                println!("[{:.2?}]", start.elapsed());
            }
            Err(e) => eprintln!("error: {e}"),
        }
    }
    client.quit();
}
