//! Quickstart: summarize a tiny relation and explore it.
//!
//! Walks the Sec. 2 motivating example: a flights table, a MaxEnt summary,
//! and approximate answers that sharpen as statistics are added.
//!
//! Run with: `cargo run --release --example quickstart`

use entropydb::prelude::*;

fn main() -> Result<()> {
    // --- 1. A small relation R(origin, dest, distance). -------------------
    let schema = Schema::new(vec![
        Attribute::categorical("origin", 4).expect("valid"),
        Attribute::categorical("dest", 4).expect("valid"),
        Attribute::binned("distance", Binner::new(0.0, 3000.0, 6).expect("valid")),
    ]);
    let mut table = Table::new(schema);
    // (origin, dest, miles): CA↔NY heavy, CA→FL medium, WA rare.
    let miles = Binner::new(0.0, 3000.0, 6).expect("valid");
    for (o, d, m, copies) in [
        (0u32, 1u32, 2_500.0, 40), // CA → NY
        (1, 0, 2_500.0, 35),       // NY → CA
        (0, 2, 2_300.0, 15),       // CA → FL
        (2, 1, 950.0, 8),          // FL → NY
        (3, 0, 700.0, 2),          // WA → CA (rare)
    ] {
        for _ in 0..copies {
            table.push_row(&[o, d, miles.bin(m)]).expect("valid row");
        }
    }
    let origin = table.schema().attr_by_name("origin").expect("exists");
    let dest = table.schema().attr_by_name("dest").expect("exists");
    println!(
        "relation: {} flights over {} possible tuples",
        table.num_rows(),
        table.schema().tuple_space_size()
    );

    // --- 2. Summarize with 1D statistics only (pure uniformity). ----------
    let no2d = MaxEntSummary::build(&table, vec![], &SolverConfig::default())?;
    let ca_ny = Predicate::new().eq(origin, 0).eq(dest, 1);
    let est = no2d.estimate_count(&ca_ny)?;
    println!(
        "\n[1D only]   CA→NY ≈ {:.1} ± {:.1} (true 40)",
        est.expectation,
        est.std_dev()
    );

    // --- 3. Add a 2D statistic on (origin, dest): the estimate sharpens. --
    let stat = MultiDimStatistic::cell2d(origin, 0, dest, 1)?;
    let with2d = MaxEntSummary::build(&table, vec![stat], &SolverConfig::default())?;
    let est = with2d.estimate_count(&ca_ny)?;
    println!(
        "[with 2D]   CA→NY ≈ {:.1} ± {:.1} (true 40)",
        est.expectation,
        est.std_dev()
    );

    // --- 4. Rare vs nonexistent: the MaxEnt advantage over samples. -------
    let wa_ca = Predicate::new().eq(origin, 3).eq(dest, 0); // rare (2 rows)
    let wa_ny = Predicate::new().eq(origin, 3).eq(dest, 1); // nonexistent
    println!(
        "\nrare  WA→CA ≈ {:.2} (true 2)",
        with2d.estimate_count(&wa_ca)?.expectation
    );
    println!(
        "null  WA→NY ≈ {:.2} (true 0)",
        with2d.estimate_count(&wa_ny)?.expectation
    );

    // --- 5. Group-by and top-k, the interactive exploration queries. ------
    println!("\ntop destinations (est flights):");
    for (v, est) in with2d.top_k(&Predicate::all(), dest, 3)? {
        println!("  dest {v}: {:.1}", est.expectation);
    }

    // --- 6. SUM/AVG over the binned attribute. -----------------------------
    let distance = table.schema().attr_by_name("distance").expect("exists");
    let avg = with2d.estimate_avg(&Predicate::new().eq(origin, 0), distance)?;
    println!("\navg distance from CA ≈ {:.0} miles", avg.unwrap_or(0.0));

    // --- 7. Persist and reload. --------------------------------------------
    let text = entropydb::core::serialize::to_string(&with2d);
    let reloaded = entropydb::core::serialize::from_str(&text)?;
    println!(
        "\nsummary serialized to {} bytes; reloaded CA→NY ≈ {:.1}",
        text.len(),
        reloaded.estimate_count(&ca_ny)?.expectation
    );
    Ok(())
}
