//! Head-to-head: EntropyDB summary vs uniform and stratified sampling.
//!
//! The paper's core comparison (Sec. 6.2) in miniature: same space budget,
//! three workload classes — heavy hitters, light hitters, nonexistent
//! values — and the punchline that only the MaxEnt summary reliably tells
//! "rare" apart from "does not exist".
//!
//! Run with: `cargo run --release --example summary_vs_sampling [-- rows]`

use entropydb::core::metrics::{f_measure, relative_error};
use entropydb::core::selection::heuristics::select_pair_statistics;
use entropydb::data::flights::{generate, FlightsConfig};
use entropydb::data::workload::Workload;
use entropydb::prelude::*;
use entropydb::sampling::{stratified_sample, uniform_sample};

fn main() -> Result<()> {
    let rows = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000);
    let dataset = generate(&FlightsConfig {
        rows,
        fine: false,
        seed: 21,
    });
    let table = &dataset.table;
    println!("dataset: {} flights", table.num_rows());

    // Build all three approaches.
    let mut stats = Vec::new();
    for (x, y) in [
        (dataset.dest, dataset.distance),
        (dataset.fl_time, dataset.distance),
    ] {
        stats.extend(select_pair_statistics(
            table,
            x,
            y,
            500,
            Heuristic::Composite,
        )?);
    }
    let summary = MaxEntSummary::build(table, stats, &SolverConfig::default())?;
    let uni = uniform_sample(table, 0.01, 5).expect("uniform sample");
    let strat = stratified_sample(table, &[dataset.dest, dataset.distance], 0.01, 5)
        .expect("stratified sample");
    println!(
        "summary: {} bytes serialized | uniform sample: {} rows | stratified: {} rows",
        entropydb::core::serialize::to_string(&summary).len(),
        uni.len(),
        strat.len()
    );

    // Workload over (dest, distance): matches the stratification, so this
    // is sampling's best case.
    let workload = Workload::generate(table, &[dataset.dest, dataset.distance], 50, 50, 100, 7)
        .expect("workload generates");

    let estimate = |name: &str, pred: &Predicate| -> f64 {
        match name {
            "EntropyDB" => summary.estimate_count(pred).expect("query").expectation,
            "Uniform" => uni.estimate_count(pred).expect("query"),
            _ => strat.estimate_count(pred).expect("query"),
        }
    };

    println!(
        "\n{:<12} {:>10} {:>10} {:>10} {:>7}",
        "method", "heavy_err", "light_err", "null_err", "F"
    );
    for name in ["EntropyDB", "Uniform", "Stratified"] {
        let avg = |items: &[(Vec<u32>, u64)]| -> f64 {
            items
                .iter()
                .map(|(v, t)| relative_error(*t as f64, estimate(name, &workload.predicate(v))))
                .sum::<f64>()
                / items.len().max(1) as f64
        };
        let heavy = avg(&workload.heavy);
        let light = avg(&workload.light);
        let null_err = workload
            .nulls
            .iter()
            .map(|v| relative_error(0.0, estimate(name, &workload.predicate(v)).round()))
            .sum::<f64>()
            / workload.nulls.len().max(1) as f64;
        let light_ests: Vec<f64> = workload
            .light
            .iter()
            .map(|(v, _)| estimate(name, &workload.predicate(v)))
            .collect();
        let null_ests: Vec<f64> = workload
            .nulls
            .iter()
            .map(|v| estimate(name, &workload.predicate(v)))
            .collect();
        let fm = f_measure(&light_ests, &null_ests);
        println!(
            "{name:<12} {heavy:>10.3} {light:>10.3} {null_err:>10.3} {:>7.3}",
            fm.f
        );
    }

    println!(
        "\nNote: the stratification (dest, distance) matches this workload — sampling's\n\
         best case. Rerun the workload on (origin, fl_time) and the stratified sample\n\
         degrades to the uniform one, while the summary is unchanged (Sec. 6.2)."
    );
    Ok(())
}
