//! Exploring the synthetic astronomy dataset (the paper's Sec. 6.3 setting).
//!
//! Builds a summary with 2D statistics over the most correlated attribute
//! pairs — chosen automatically with chi-squared ranking and the
//! attribute-cover strategy — then answers the kinds of questions an
//! astronomer would ask: how many particles sit in dense clustered regions,
//! what the halo population looks like per snapshot, and where the mass is.
//!
//! Run with: `cargo run --release --example particles_exploration [-- rows]`

use entropydb::core::selection::heuristics::select_pair_statistics;
use entropydb::core::selection::{choose_pairs, PairStrategy};
use entropydb::data::particles::{generate, ParticlesConfig};
use entropydb::prelude::*;
use entropydb::storage::correlation::rank_pairs;
use entropydb::storage::exec;

fn main() -> Result<()> {
    let rows = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(150_000);

    println!("simulating {rows} particles x 3 snapshots...");
    let dataset = generate(&ParticlesConfig {
        rows_per_snapshot: rows / 3,
        snapshots: 3,
        seed: 99,
        halos: 24,
    });
    let table = &dataset.table;

    // Rank attribute pairs by association and keep the best 4 that cover
    // the most attributes (Sec. 4.3's winning strategy).
    let candidates = [
        dataset.density,
        dataset.mass,
        dataset.x,
        dataset.y,
        dataset.z,
        dataset.grp,
        dataset.ptype,
    ];
    let scores = rank_pairs(table, &candidates)?;
    println!("\nstrongest correlations (Cramér's V):");
    for s in scores.iter().take(4) {
        let nx = table.schema().attr(s.x)?.name().to_string();
        let ny = table.schema().attr(s.y)?.name().to_string();
        println!("  ({nx}, {ny}): {:.3}", s.cramers_v);
    }
    let chosen = choose_pairs(&scores, 4, PairStrategy::AttributeCover);

    let mut stats = Vec::new();
    for pair in &chosen {
        stats.extend(select_pair_statistics(
            table,
            pair.x,
            pair.y,
            80,
            Heuristic::Composite,
        )?);
    }
    println!("\nfitting the summary ({} 2D statistics)...", stats.len());
    let summary = MaxEntSummary::build(table, stats, &SolverConfig::default())?;
    println!(
        "  {} sweeps, residual {:.1e}, {:.2}s",
        summary.solver_report().sweeps,
        summary.solver_report().max_residual,
        summary.solver_report().seconds
    );

    // How many clustered, high-density particles? (grp = 1, top density
    // third).
    let dense_clustered = Predicate::new()
        .eq(dataset.grp, 1)
        .between(dataset.density, 39, 57);
    let est = summary.estimate_count(&dense_clustered)?;
    let truth = exec::count(table, &dense_clustered)?;
    println!(
        "\ndense clustered particles: est {:.0} (true {truth})",
        est.expectation
    );

    // Cluster growth per snapshot (gravitational collapse over time). The
    // summary has no (grp, snapshot) statistic, so the MaxEnt uniformity
    // assumption flattens the trend — exactly the failure mode 2D
    // statistics exist to fix (paper Sec. 2).
    println!("\nclustered particles per snapshot (no 2D stat on (grp, snapshot)):");
    let per_snapshot = |s: &MaxEntSummary| -> Result<()> {
        let groups = s.estimate_group_by(&Predicate::new().eq(dataset.grp, 1), dataset.snapshot)?;
        for (snap, est) in groups.iter().enumerate() {
            let truth = exec::count(
                table,
                &Predicate::new()
                    .eq(dataset.grp, 1)
                    .eq(dataset.snapshot, snap as u32),
            )?;
            println!("  snapshot {snap}: {:>9.1} (true {truth})", est.expectation);
        }
        Ok(())
    };
    per_snapshot(&summary)?;

    // Add the missing statistic and watch the trend come back.
    let mut stats2 = Vec::new();
    for pair in &chosen {
        stats2.extend(select_pair_statistics(
            table,
            pair.x,
            pair.y,
            80,
            Heuristic::Composite,
        )?);
    }
    stats2.extend(select_pair_statistics(
        table,
        dataset.grp,
        dataset.snapshot,
        6,
        Heuristic::Composite,
    )?);
    let summary2 = MaxEntSummary::build(table, stats2, &SolverConfig::default())?;
    println!("after adding a (grp, snapshot) statistic:");
    per_snapshot(&summary2)?;

    // Where is the mass? Average mass of clustered vs background particles.
    for (label, grp) in [("background", 0u32), ("clustered", 1u32)] {
        let avg = summary
            .estimate_avg(&Predicate::new().eq(dataset.grp, grp), dataset.mass)?
            .unwrap_or(0.0);
        println!("avg particle mass ({label}): {avg:.2}");
    }

    // Star census in a spatial region (a corner octant of the box).
    let corner_stars = Predicate::new()
        .eq(dataset.ptype, 2)
        .between(dataset.x, 0, 9)
        .between(dataset.y, 0, 9)
        .between(dataset.z, 0, 9);
    let est = summary.estimate_count(&corner_stars)?;
    let truth = exec::count(table, &corner_stars)?;
    println!(
        "\nstars in the corner octant: est {:.0} ± {:.0} (true {truth})",
        est.expectation,
        est.std_dev()
    );
    Ok(())
}
