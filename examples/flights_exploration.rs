//! Interactive exploration of the synthetic flights dataset.
//!
//! Recreates the paper's data-analyst story (Sec. 1-2): build one summary
//! offline, then fire exploratory queries at it interactively — counts,
//! ranges, group-bys — and compare a few of them against the exact answers
//! the full table would give.
//!
//! Run with: `cargo run --release --example flights_exploration [-- rows]`

use entropydb::core::selection::heuristics::select_pair_statistics;
use entropydb::data::flights::{generate, FlightsConfig};
use entropydb::prelude::*;
use entropydb::storage::exec;
use std::time::Instant;

fn main() -> Result<()> {
    let rows = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000);

    println!("generating {rows} synthetic flights...");
    let dataset = generate(&FlightsConfig {
        rows,
        fine: false,
        seed: 7,
    });
    let table = &dataset.table;

    // Offline: choose statistics (COMPOSITE over the paper's pairs 2 and 3)
    // and fit the model.
    println!("building summary (COMPOSITE statistics on pairs 2 and 3)...");
    let mut stats = Vec::new();
    for (x, y) in [
        (dataset.dest, dataset.distance),
        (dataset.fl_time, dataset.distance),
    ] {
        stats.extend(select_pair_statistics(
            table,
            x,
            y,
            400,
            Heuristic::Composite,
        )?);
    }
    let (summary, build_time) = {
        let start = Instant::now();
        let s = MaxEntSummary::build(table, stats, &SolverConfig::default())?;
        (s, start.elapsed())
    };
    let report = summary.solver_report();
    println!(
        "  solved in {:.2}s ({} sweeps, residual {:.1e}); total build {:.2}s",
        report.seconds,
        report.sweeps,
        report.max_residual,
        build_time.as_secs_f64()
    );
    println!(
        "  polynomial: {} terms (uncompressed form would have {:.1e} monomials)",
        summary.size_stats().num_terms,
        summary.size_stats().uncompressed_monomials as f64
    );

    // Interactive: exploratory queries with exact-answer comparison.
    println!("\n--- exploration session ---");
    let queries = [
        (
            "long flights (distance in top third)",
            Predicate::new().between(dataset.distance, 54, 80),
        ),
        (
            "long flights arriving at the busiest state",
            Predicate::new()
                .between(dataset.distance, 54, 80)
                .eq(dataset.dest, 0),
        ),
        (
            "short quick hops (low distance, low time)",
            Predicate::new()
                .between(dataset.distance, 0, 8)
                .between(dataset.fl_time, 0, 10),
        ),
        (
            "mismatched time/distance (slow short flights)",
            Predicate::new()
                .between(dataset.distance, 0, 8)
                .between(dataset.fl_time, 30, 61),
        ),
    ];
    for (label, pred) in &queries {
        let start = Instant::now();
        let est = summary.estimate_count(pred)?;
        let elapsed = start.elapsed();
        let truth = exec::count(table, pred)?;
        let (lo, hi) = est.ci95();
        println!(
            "{label}\n  estimate {:>10.1}  [95% CI {:.0}..{:.0}]  true {truth:>8}  ({:.2?})",
            est.expectation, lo, hi, elapsed
        );
    }

    // Group-by: flights per destination for long-haul routes, top 5.
    println!("\ntop 5 destinations for long flights (est vs true):");
    let pred = Predicate::new().between(dataset.distance, 54, 80);
    for (v, est) in summary.top_k(&pred, dataset.dest, 5)? {
        let truth = exec::count(table, &pred.clone().eq(dataset.dest, v))?;
        let name = dataset.locations.value(v).unwrap_or("?");
        println!("  {name}: {:>9.1} (true {truth})", est.expectation);
    }

    // The date attribute is near-uniform: the summary knows it without any
    // 2D statistic on it.
    let jan = Predicate::new().between(dataset.fl_date, 0, 30);
    let est = summary.estimate_count(&jan)?;
    let truth = exec::count(table, &jan)?;
    println!(
        "\nflights in the first 31 days: est {:.0}, true {truth} (uniformity assumption holds)",
        est.expectation
    );
    Ok(())
}
