//! # entropydb
//!
//! Facade crate for **EntropyDB-rs**, a Rust reproduction of
//! "Probabilistic Database Summarization for Interactive Data Exploration"
//! (Orr, Balazinska, Suciu; VLDB 2017).
//!
//! Re-exports the workspace crates:
//! * [`core`] — the MaxEnt summary model (the paper's contribution).
//! * [`storage`] — the in-memory column store substrate.
//! * [`data`] — synthetic flights/particles generators and workloads.
//! * [`sampling`] — uniform and stratified sampling baselines.
//! * [`server`] — the TCP query service + client over the query IR.
//!
//! See `examples/quickstart.rs` for a five-minute tour, and the
//! `entropydb-bench` crate for the paper's full evaluation.

pub use entropydb_core as core;
pub use entropydb_data as data;
pub use entropydb_sampling as sampling;
pub use entropydb_server as server;
pub use entropydb_storage as storage;

/// Everything a typical user needs in scope.
pub mod prelude {
    pub use entropydb_core::prelude::*;
    pub use entropydb_server::{serve, Client, RemoteShardedSummary, ServerHandle};
    pub use entropydb_storage::{
        parse_predicate, parse_statement, AttrId, AttrPredicate, Attribute, Binner, Partitioning,
        Predicate, Schema, Statement, Table,
    };
}
