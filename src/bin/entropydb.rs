//! `entropydb` — a small CLI over the library: summarize a CSV file, then
//! explore it with approximate queries.
//!
//! ```text
//! entropydb summarize <data.csv> [--pairs K] [--budget B] [--out summary.txt]
//! entropydb query <data.csv> <summary.txt> "<predicate>" [--exact]
//! entropydb info <summary.txt>
//! ```
//!
//! Predicates use the textual language of `entropydb_storage::parser`:
//! `origin = CA AND distance BETWEEN 100 AND 800 AND dest IN (NY, FL)`.
//! The CSV is re-read at query time to recover the value dictionaries (the
//! summary file stores only the model).

use entropydb::core::selection::heuristics::select_pair_statistics;
use entropydb::core::selection::{choose_pairs, PairStrategy};
use entropydb::prelude::*;
use entropydb::storage::correlation::rank_pairs;
use entropydb::storage::csv::{load_file, CsvOptions};
use entropydb::storage::exec;
use entropydb::storage::parser::parse_predicate;
use std::path::Path;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  entropydb summarize <data.csv> [--pairs K] [--budget B] [--out summary.txt]\n  \
         entropydb query <data.csv> <summary.txt> \"<predicate>\" [--exact]\n  \
         entropydb info <summary.txt>"
    );
    ExitCode::from(2)
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn summarize(args: &[String]) -> Result<ExitCode> {
    let Some(csv_path) = args.first() else {
        return Ok(usage());
    };
    let pairs: usize = flag_value(args, "--pairs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let budget: usize = flag_value(args, "--budget")
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let out = flag_value(args, "--out").unwrap_or_else(|| "summary.txt".to_string());

    eprintln!("loading {csv_path}...");
    let dataset = load_file(Path::new(csv_path), &CsvOptions::default())?;
    let table = &dataset.table;
    eprintln!(
        "  {} rows, {} attributes, {} possible tuples",
        table.num_rows(),
        table.schema().arity(),
        table.schema().tuple_space_size()
    );

    let attrs: Vec<_> = table.schema().attr_ids().collect();
    let scores = rank_pairs(table, &attrs)?;
    let chosen = choose_pairs(&scores, pairs, PairStrategy::AttributeCover);
    eprintln!(
        "choosing {} attribute pairs (attribute-cover):",
        chosen.len()
    );
    let mut stats = Vec::new();
    for p in &chosen {
        let (nx, ny) = (
            table.schema().attr(p.x)?.name().to_string(),
            table.schema().attr(p.y)?.name().to_string(),
        );
        eprintln!(
            "  ({nx}, {ny}) V = {:.3}, {budget} COMPOSITE statistics",
            p.cramers_v
        );
        stats.extend(select_pair_statistics(
            table,
            p.x,
            p.y,
            budget,
            Heuristic::Composite,
        )?);
    }

    eprintln!("solving the MaxEnt model...");
    let summary = MaxEntSummary::build(table, stats, &SolverConfig::default())?;
    let report = summary.solver_report();
    eprintln!(
        "  {report}, {} polynomial terms",
        summary.size_stats().num_terms
    );
    entropydb::core::serialize::save_file(&summary, Path::new(&out)).map_err(|e| {
        ModelError::Parse {
            line: 0,
            message: format!("cannot write {out}: {e}"),
        }
    })?;
    eprintln!(
        "summary written to {out} ({} bytes)",
        std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0)
    );
    Ok(ExitCode::SUCCESS)
}

fn query(args: &[String]) -> Result<ExitCode> {
    let (Some(csv_path), Some(summary_path), Some(expr)) = (args.first(), args.get(1), args.get(2))
    else {
        return Ok(usage());
    };
    let exact = args.iter().any(|a| a == "--exact");

    let dataset = load_file(Path::new(csv_path), &CsvOptions::default())?;
    let summary = entropydb::core::serialize::load_file(Path::new(summary_path))?;
    if summary.statistics().domain_sizes() != dataset.table.schema().domain_sizes() {
        return Err(ModelError::ShapeMismatch);
    }

    // Full statements (COUNT / SUM / AVG / GROUP BY / TOP / SAMPLE) go
    // through the query IR; a bare predicate is shorthand for COUNT WHERE
    // (so an attribute literally named "count" stays queryable). When both
    // parses fail, statement-shaped input reports the statement parser's
    // diagnostic rather than a misleading "unknown attribute: COUNT".
    let request = match entropydb::core::plan::parse_request(expr, &dataset) {
        Ok(request) => request,
        Err(statement_err) => match parse_predicate(expr, &dataset) {
            Ok(pred) => QueryRequest::count(pred),
            Err(predicate_err) => {
                let head = expr
                    .split_whitespace()
                    .next()
                    .and_then(|w| w.split('(').next())
                    .unwrap_or("");
                let statement_shaped = ["count", "sum", "avg", "group", "top", "sample"]
                    .iter()
                    .any(|k| head.eq_ignore_ascii_case(k));
                return Err(if statement_shaped {
                    statement_err
                } else {
                    predicate_err.into()
                });
            }
        },
    };
    let engine = QueryEngine::new(summary);
    let start = std::time::Instant::now();
    let response = engine.execute(&request)?;
    let elapsed = start.elapsed();
    match &response {
        QueryResponse::Estimate(est) => {
            let (lo, hi) = est.ci95();
            println!(
                "estimate: {:.1}   (95% CI {:.0}..{:.0}, rounded {})   [{elapsed:.2?}]",
                est.expectation,
                lo,
                hi,
                est.rounded()
            );
        }
        QueryResponse::Probability(p) => println!("probability: {p:.6}   [{elapsed:.2?}]"),
        QueryResponse::Average(None) => {
            println!("avg: undefined (zero-probability predicate)   [{elapsed:.2?}]")
        }
        QueryResponse::Average(Some(v)) => println!("avg: {v:.3}   [{elapsed:.2?}]"),
        QueryResponse::Groups(groups) => {
            let grouped = match &request {
                QueryRequest::GroupBy { attr, .. } => *attr,
                _ => AttrId(0),
            };
            for (v, est) in groups.iter().enumerate() {
                if est.exists() {
                    println!(
                        "  {} = {}   ≈ {:.1} ± {:.1}",
                        engine.schema().attr(grouped)?.name(),
                        dataset.label_of(grouped, v as u32)?,
                        est.expectation,
                        est.std_dev()
                    );
                }
            }
            println!("({} groups)   [{elapsed:.2?}]", groups.len());
        }
        QueryResponse::Groups2(rows) => {
            let live: usize = rows
                .iter()
                .map(|r| r.iter().filter(|e| e.exists()).count())
                .sum();
            println!("{live} non-empty cells   [{elapsed:.2?}]");
        }
        QueryResponse::Ranked(entries) => {
            let ranked = match &request {
                QueryRequest::TopK { attr, .. } => *attr,
                _ => AttrId(0),
            };
            for (rank, (v, est)) in entries.iter().enumerate() {
                println!(
                    "#{:<3} {}   ≈ {:.1}",
                    rank + 1,
                    dataset.label_of(ranked, *v)?,
                    est.expectation
                );
            }
            println!("[{elapsed:.2?}]");
        }
        QueryResponse::Rows { rows, .. } => {
            for row in rows.iter().take(20) {
                let labels: Vec<String> = row
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| dataset.label_of(AttrId(i), v))
                    .collect::<entropydb::storage::Result<_>>()?;
                println!("  {}", labels.join(", "));
            }
            println!("({} sampled rows)   [{elapsed:.2?}]", rows.len());
        }
    }
    if exact {
        if let Some(pred) = request.predicate() {
            if matches!(request, QueryRequest::Count { .. }) {
                let start = std::time::Instant::now();
                let truth = exec::count(&dataset.table, pred)?;
                println!("exact:    {truth}   [{:.2?}]", start.elapsed());
            }
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn info(args: &[String]) -> Result<ExitCode> {
    let Some(summary_path) = args.first() else {
        return Ok(usage());
    };
    let summary = entropydb::core::serialize::load_file(Path::new(summary_path))?;
    let stats = summary.statistics();
    println!(
        "n = {} tuples over {} attributes",
        summary.n(),
        stats.arity()
    );
    for (i, attr) in summary.schema().attributes().iter().enumerate() {
        println!("  A{i} {} (domain {})", attr.name(), attr.domain_size());
    }
    let s = summary.size_stats();
    println!(
        "{} multi-dimensional statistics; {} polynomial terms (vs {:.2e} uncompressed)",
        stats.multi().len(),
        s.num_terms,
        s.uncompressed_monomials as f64
    );
    println!("solver: {}", summary.solver_report());
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(String::as_str) else {
        return usage();
    };
    let result = match command {
        "summarize" => summarize(&args[1..]),
        "query" => query(&args[1..]),
        "info" => info(&args[1..]),
        _ => return usage(),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
