//! Cross-crate integration tests of the paper's mathematical identities,
//! exercised through the public facade on realistic generated data.

use entropydb::core::selection::heuristics::select_pair_statistics;
use entropydb::data::flights::{generate, FlightsConfig};
use entropydb::prelude::*;
use entropydb::storage::exec;

fn small_flights() -> entropydb::data::flights::FlightsDataset {
    generate(&FlightsConfig {
        rows: 20_000,
        fine: false,
        seed: 3,
    })
}

fn summary_with_pairs(
    d: &entropydb::data::flights::FlightsDataset,
    budget: usize,
) -> MaxEntSummary {
    let mut stats = Vec::new();
    for (x, y) in [(d.dest, d.distance), (d.fl_time, d.distance)] {
        stats.extend(
            select_pair_statistics(&d.table, x, y, budget, Heuristic::Composite)
                .expect("selection"),
        );
    }
    MaxEntSummary::build(&d.table, stats, &SolverConfig::default()).expect("summary builds")
}

/// Overcompleteness: for every attribute, the per-value expectations
/// partition the relation cardinality.
#[test]
fn expectations_partition_n_for_every_attribute() {
    let d = small_flights();
    let summary = summary_with_pairs(&d, 60);
    let n = summary.n() as f64;
    for attr in d.table.schema().attr_ids() {
        let groups = summary
            .estimate_group_by(&Predicate::all(), attr)
            .expect("group by");
        let total: f64 = groups.iter().map(|e| e.expectation).sum();
        assert!(
            (total - n).abs() < 1e-6 * n,
            "attribute {attr}: {total} vs {n}"
        );
    }
}

/// Every fitted statistic is reproduced by the model: querying a statistic's
/// own predicate returns (approximately) its observed count.
#[test]
fn fitted_statistics_are_reproduced_by_queries() {
    let d = small_flights();
    let summary = summary_with_pairs(&d, 40);
    let stats = summary.statistics();
    let n = summary.n() as f64;
    for (stat, &count) in stats.multi().iter().zip(stats.multi_counts()) {
        let est = summary
            .estimate_count(&stat.to_predicate())
            .expect("query")
            .expectation;
        assert!(
            (est - count as f64).abs() < 1e-3 * n,
            "{stat:?}: {est} vs {count}"
        );
    }
}

/// 1D statistics are complete, so single-attribute queries are exact — for
/// any summary configuration.
#[test]
fn single_attribute_queries_are_exact() {
    let d = small_flights();
    let summary = summary_with_pairs(&d, 40);
    for v in 0..54u32 {
        let pred = Predicate::new().eq(d.origin, v);
        let truth = exec::count(&d.table, &pred).expect("exact") as f64;
        let est = summary.estimate_count(&pred).expect("query").expectation;
        assert!((est - truth).abs() < 1e-5 * (truth + 1.0), "origin {v}");
    }
}

/// Corollary 4.4(2): a range query equals the sum of its point queries.
#[test]
fn range_query_equals_sum_of_points() {
    let d = small_flights();
    let summary = summary_with_pairs(&d, 40);
    let range = Predicate::new().between(d.distance, 10, 25).eq(d.dest, 1);
    let whole = summary.estimate_count(&range).expect("query").expectation;
    let sum: f64 = (10..=25u32)
        .map(|v| {
            summary
                .estimate_count(&Predicate::new().eq(d.distance, v).eq(d.dest, 1))
                .expect("query")
                .expectation
        })
        .sum();
    assert!(
        (whole - sum).abs() < 1e-6 * whole.max(1.0),
        "{whole} vs {sum}"
    );
}

/// The probability of the always-true predicate is 1, and of a contradictory
/// predicate is 0.
#[test]
fn probability_bounds() {
    let d = small_flights();
    let summary = summary_with_pairs(&d, 40);
    let p_all = summary.probability(&Predicate::all()).expect("query");
    assert!((p_all - 1.0).abs() < 1e-12);
    let contradiction = Predicate::new().eq(d.origin, 0).eq(d.origin, 1);
    let p_none = summary.probability(&contradiction).expect("query");
    assert_eq!(p_none, 0.0);
}

/// ZERO statistics pin their cells: the model answers exactly 0 for them
/// (no phantom tuples — the Sec. 4.3 motivation).
#[test]
fn zero_statistics_eliminate_phantoms() {
    let d = small_flights();
    let zero_stats =
        select_pair_statistics(&d.table, d.origin, d.dest, 50, Heuristic::Zero).expect("selection");
    let summary = MaxEntSummary::build(&d.table, zero_stats.clone(), &SolverConfig::default())
        .expect("summary builds");
    for stat in zero_stats.iter().take(20) {
        let truth = exec::count(&d.table, &stat.to_predicate()).expect("exact");
        if truth == 0 {
            let est = summary
                .estimate_count(&stat.to_predicate())
                .expect("query")
                .expectation;
            assert!(est.abs() < 1e-9, "{stat:?} estimated {est}");
        }
    }
}

/// Serialization through a file preserves all estimates bit-exactly.
#[test]
fn file_round_trip_preserves_estimates() {
    let d = small_flights();
    let summary = summary_with_pairs(&d, 30);
    let dir = std::env::temp_dir().join("entropydb-integration");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("flights-summary.txt");
    entropydb::core::serialize::save_file(&summary, &path).expect("save");
    let loaded = entropydb::core::serialize::load_file(&path).expect("load");
    std::fs::remove_file(&path).ok();

    for v in [0u32, 5, 17] {
        let pred = Predicate::new().eq(d.dest, v).between(d.distance, 5, 40);
        let a = summary.estimate_count(&pred).expect("query").expectation;
        let b = loaded.estimate_count(&pred).expect("query").expectation;
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

/// The variance formula is coherent: a CI95 built from it contains the
/// expectation, and deterministic queries (1D, fully covered) have small
/// relative deviation.
#[test]
fn variance_and_confidence_intervals() {
    let d = small_flights();
    let summary = summary_with_pairs(&d, 40);
    let pred = Predicate::new().between(d.fl_time, 5, 30);
    let est = summary.estimate_count(&pred).expect("query");
    let (lo, hi) = est.ci95();
    assert!(lo <= est.expectation && est.expectation <= hi);
    assert!(est.variance <= summary.n() as f64);
}
