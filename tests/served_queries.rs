//! Facade-level serving scenario: a persisted summary served over TCP
//! answers textual statements identically to in-process execution —
//! text statement → parser → IR → TCP → engine → response.

use entropydb::core::serialize;
use entropydb::prelude::*;

fn a(i: usize) -> AttrId {
    AttrId(i)
}

fn table() -> Table {
    let schema = Schema::new(vec![
        Attribute::categorical("origin", 3).unwrap(),
        Attribute::categorical("dest", 4).unwrap(),
        Attribute::binned("distance", Binner::new(0.0, 1000.0, 8).unwrap()),
    ]);
    let mut t = Table::new(schema);
    let mut v = 2u32;
    for _ in 0..120 {
        t.push_row(&[v % 3, (v / 3) % 4, (v / 12) % 8]).unwrap();
        v = v.wrapping_mul(11).wrapping_add(5);
    }
    t
}

#[test]
fn served_statements_match_in_process_answers() {
    let stat = MultiDimStatistic::cell2d(a(0), 0, a(1), 0).unwrap();
    let summary = MaxEntSummary::build(&table(), vec![stat], &SolverConfig::default()).unwrap();

    // Round-trip through the persistence layer, as a deployment would.
    let blob = serialize::to_string(&summary);
    let served = serialize::from_str(&blob).unwrap();

    let engine = QueryEngine::new(summary);
    let handle = serve(QueryEngine::new(served), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();

    for stmt in [
        "COUNT WHERE origin = 1 AND distance >= 300",
        "COUNT WHERE dest IN (0, 2) GROUP BY origin",
        "SUM(distance) WHERE origin = 0",
        "AVG(distance)",
        "TOP 3 dest WHERE distance < 700",
        "COUNT WHERE origin IN ()",
        "SAMPLE 20 SEED 9",
    ] {
        // Client side: statement parsed against the *served* schema.
        let remote = client.query(stmt).expect(stmt);
        // In-process: same statement, same parser, local engine.
        let request = parse_request(stmt, engine.schema()).expect(stmt);
        let local = engine.execute(&request).expect(stmt);
        assert_eq!(remote, local, "{stmt}");
    }

    // The wire answers are bit-identical, not merely close.
    let remote = client
        .query("COUNT WHERE origin = 2")
        .unwrap()
        .estimate()
        .unwrap();
    let local = engine
        .estimate_count(&Predicate::new().eq(a(0), 2))
        .unwrap();
    assert_eq!(remote.expectation.to_bits(), local.expectation.to_bits());
    assert_eq!(remote.variance.to_bits(), local.variance.to_bits());

    client.quit();
    handle.shutdown();
}
