//! End-to-end scenarios across all crates: datasets → statistics selection →
//! summaries → queries vs exact ground truth vs sampling baselines.

use entropydb::core::metrics::{mean_relative_error, relative_error};
use entropydb::core::selection::heuristics::select_pair_statistics;
use entropydb::core::selection::{choose_pairs, PairStrategy};
use entropydb::data::flights::{generate, restrict_to_time_distance, FlightsConfig};
use entropydb::data::particles::{self, ParticlesConfig};
use entropydb::data::workload::Workload;
use entropydb::prelude::*;
use entropydb::sampling::uniform_sample;
use entropydb::storage::correlation::rank_pairs;
use entropydb::storage::exec;

/// A fully covered attribute pair makes point queries on it near-exact:
/// COMPOSITE with budget >= live cells captures the entire 2D distribution.
#[test]
fn full_budget_composite_is_near_exact_on_its_pair() {
    let d = generate(&FlightsConfig {
        rows: 10_000,
        fine: false,
        seed: 12,
    });
    let (table, _, et, dt) = restrict_to_time_distance(&d);
    let hist = entropydb::storage::Histogram2D::compute(&table, et, dt).expect("hist");
    // Budget of all 62*81 cells: every live region isolated.
    let stats =
        select_pair_statistics(&table, et, dt, 62 * 81, Heuristic::Composite).expect("selection");
    let summary =
        MaxEntSummary::build(&table, stats, &SolverConfig::default()).expect("summary builds");

    let mut pairs = Vec::new();
    for (x, y, c) in hist.iter_nonzero().take(200) {
        let pred = Predicate::new().eq(et, x).eq(dt, y);
        let est = summary.estimate_count(&pred).expect("query").expectation;
        pairs.push((c as f64, est));
    }
    let err = mean_relative_error(&pairs);
    assert!(err < 0.02, "mean relative error {err}");
}

/// The MaxEnt summary never misses populations entirely: every existing
/// group gets a positive estimate under a 1D-only model (no false
/// negatives), while a small uniform sample misses many light hitters.
#[test]
fn summary_has_no_false_negatives_where_small_samples_do() {
    let d = generate(&FlightsConfig {
        rows: 30_000,
        fine: false,
        seed: 4,
    });
    let workload = Workload::generate(&d.table, &[d.origin, d.dest], 30, 60, 0, 9)
        .expect("workload generates");
    let summary = MaxEntSummary::build(&d.table, vec![], &SolverConfig::default()).expect("builds");
    let sample = uniform_sample(&d.table, 0.002, 8).expect("sample"); // 60 rows

    let mut summary_zeroes = 0;
    let mut sample_zeroes = 0;
    for (values, _) in &workload.light {
        let pred = workload.predicate(values);
        if summary.estimate_count(&pred).expect("query").expectation <= 0.0 {
            summary_zeroes += 1;
        }
        if sample.estimate_count(&pred).expect("query") <= 0.0 {
            sample_zeroes += 1;
        }
    }
    // The product-of-marginals model gives positive probability to every
    // combination of existing values.
    assert_eq!(summary_zeroes, 0);
    // A 60-row sample cannot contain 60 distinct light-hitter routes.
    assert!(sample_zeroes > workload.light.len() / 2);
}

/// Adding a 2D statistic over a correlated pair strictly improves accuracy
/// on that pair's heavy hitters (the Sec. 2 motivation).
#[test]
fn two_d_statistics_improve_covered_queries() {
    let d = generate(&FlightsConfig {
        rows: 30_000,
        fine: false,
        seed: 4,
    });
    let workload = Workload::generate(&d.table, &[d.fl_time, d.distance], 40, 0, 0, 9)
        .expect("workload generates");
    let no2d = MaxEntSummary::build(&d.table, vec![], &SolverConfig::default()).expect("builds");
    let stats = select_pair_statistics(&d.table, d.fl_time, d.distance, 300, Heuristic::Composite)
        .expect("selection");
    let with2d = MaxEntSummary::build(&d.table, stats, &SolverConfig::default()).expect("builds");

    let err = |s: &MaxEntSummary| -> f64 {
        workload
            .heavy
            .iter()
            .map(|(v, t)| {
                relative_error(
                    *t as f64,
                    s.estimate_count(&workload.predicate(v))
                        .expect("query")
                        .expectation,
                )
            })
            .sum::<f64>()
            / workload.heavy.len() as f64
    };
    let (e_no2d, e_with2d) = (err(&no2d), err(&with2d));
    assert!(
        e_with2d < e_no2d * 0.7,
        "2D stats should cut error: {e_no2d} -> {e_with2d}"
    );
}

/// End-to-end particles pipeline: automatic pair selection, summary build,
/// and sane aggregates (SUM/AVG) against exact answers.
#[test]
fn particles_pipeline_with_automatic_pair_selection() {
    let d = particles::generate(&ParticlesConfig {
        rows_per_snapshot: 10_000,
        snapshots: 2,
        seed: 31,
        halos: 10,
    });
    let candidates = [d.density, d.mass, d.grp, d.ptype];
    let scores = rank_pairs(&d.table, &candidates).expect("ranking");
    let chosen = choose_pairs(&scores, 2, PairStrategy::AttributeCover);
    assert_eq!(chosen.len(), 2);
    let mut stats = Vec::new();
    for pair in &chosen {
        stats.extend(
            select_pair_statistics(&d.table, pair.x, pair.y, 60, Heuristic::Composite)
                .expect("selection"),
        );
    }
    let summary = MaxEntSummary::build(&d.table, stats, &SolverConfig::default()).expect("builds");
    assert!(summary.solver_report().max_residual < 1e-3);

    let mass_binner = d
        .table
        .schema()
        .attr(d.mass)
        .expect("attr")
        .binner()
        .expect("binned")
        .clone();
    let weights: Vec<f64> = (0..52u32).map(|v| mass_binner.midpoint(v)).collect();
    let exact_avg = |pred: &Predicate| -> f64 {
        let sum = exec::sum_by(&d.table, pred, d.mass, &weights).expect("sum");
        let cnt = exec::count(&d.table, pred).expect("count") as f64;
        sum / cnt
    };

    // Unconditional AVG mass: the 1D mass statistics are complete, so this
    // is exact up to bucketing.
    let overall = summary
        .estimate_avg(&Predicate::all(), d.mass)
        .expect("query")
        .expect("positive count");
    let overall_exact = exact_avg(&Predicate::all());
    assert!(
        (overall - overall_exact).abs() / overall_exact < 1e-6,
        "overall avg mass: est {overall}, exact {overall_exact}"
    );

    // Conditional AVG mass of clustered particles: accuracy depends on
    // whether the chosen pairs cover (mass, grp); allow model-level slack
    // but require the estimate to stay in the right ballpark.
    let pred = Predicate::new().eq(d.grp, 1);
    let est_avg = summary
        .estimate_avg(&pred, d.mass)
        .expect("query")
        .expect("positive count");
    let clustered_exact = exact_avg(&pred);
    assert!(
        (est_avg - clustered_exact).abs() / clustered_exact < 0.4,
        "clustered avg mass: est {est_avg}, exact {clustered_exact}"
    );
}

/// Sharded end-to-end through the facade: partition a real-shaped dataset,
/// build a sharded summary, and check the merged engine against exact
/// ground truth and the monolithic model, then round-trip it through the
/// manifest serializer.
#[test]
fn sharded_pipeline_matches_monolithic_and_round_trips() {
    let d = generate(&FlightsConfig {
        rows: 12_000,
        fine: false,
        seed: 21,
    });
    let stats = select_pair_statistics(&d.table, d.fl_time, d.distance, 120, Heuristic::Composite)
        .expect("selection");

    let mono =
        MaxEntSummary::build(&d.table, stats.clone(), &SolverConfig::default()).expect("builds");
    let sharded = ShardedSummary::build(
        &d.table,
        &Partitioning::hash(4),
        stats,
        &ShardedBuildConfig::default(),
    )
    .expect("sharded builds");
    assert_eq!(sharded.n(), mono.n());

    // 1D marginals are exact for both engines.
    for v in 0..5u32 {
        let pred = Predicate::new().eq(d.origin, v);
        let truth = exec::count(&d.table, &pred).expect("count") as f64;
        let est = sharded.estimate_count(&pred).expect("query").expectation;
        assert!(
            (est - truth).abs() < 1e-4 * sharded.n() as f64,
            "origin {v}: {est} vs {truth}"
        );
    }
    // Covered 2D queries: sharded stays close to the monolithic answer.
    let pred = Predicate::new()
        .between(d.fl_time, 5, 25)
        .between(d.distance, 5, 40);
    let e_mono = mono.estimate_count(&pred).expect("query").expectation;
    let e_shard = sharded.estimate_count(&pred).expect("query").expectation;
    assert!(
        (e_mono - e_shard).abs() < 0.1 * e_mono.max(1.0),
        "mono {e_mono} vs sharded {e_shard}"
    );

    // Group-by and top-k run through the merged fan-out paths.
    let groups = sharded
        .estimate_group_by(&pred, d.origin)
        .expect("group-by");
    let top = sharded.top_k(&pred, d.origin, 3).expect("top-k");
    assert_eq!(top.len(), 3);
    let best = groups
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.expectation.total_cmp(&b.1.expectation))
        .expect("non-empty");
    assert_eq!(top[0].0, best.0 as u32);

    // Manifest round trip preserves the merged estimates bit for bit.
    let loaded = entropydb::core::serialize::sharded_from_str(
        &entropydb::core::serialize::sharded_to_string(&sharded),
    )
    .expect("round trip");
    assert_eq!(
        loaded
            .estimate_count(&pred)
            .expect("query")
            .expectation
            .to_bits(),
        e_shard.to_bits()
    );
}

/// The Fig. 1 walk-through from the paper's Sec. 2 intro: with only 1D
/// information the CA→NY estimate is n/50²-style uniform; telling the model
/// CA only flies to 3 states concentrates the mass.
#[test]
fn section_2_walkthrough() {
    // 50 states; 500 flights from CA uniformly to NY, FL, WA only; the other
    // states' flights spread evenly.
    let schema = Schema::new(vec![
        Attribute::categorical("origin", 50).expect("valid"),
        Attribute::categorical("dest", 50).expect("valid"),
    ]);
    let mut table = Table::new(schema);
    for i in 0..500u32 {
        // CA = 0; NY = 1, FL = 2, WA = 3.
        table.push_row(&[0, 1 + (i % 3)]).expect("valid");
    }
    for i in 0..4_500u32 {
        table
            .push_row(&[1 + (i % 49), (i * 7) % 50])
            .expect("valid");
    }
    let origin = AttrId(0);
    let dest = AttrId(1);
    let ca_ny = Predicate::new().eq(origin, 0).eq(dest, 1);

    // 1D only: CA mass spreads over destinations by their marginals.
    let no2d = MaxEntSummary::build(&table, vec![], &SolverConfig::default()).expect("builds");
    let uniform_est = no2d.estimate_count(&ca_ny).expect("query").expectation;

    // Add the "CA only flies to NY/FL/WA" knowledge as a 2D statistic.
    let stat = MultiDimStatistic::rect2d(origin, (0, 0), dest, (1, 3)).expect("valid");
    let informed =
        MaxEntSummary::build(&table, vec![stat], &SolverConfig::default()).expect("builds");
    let informed_est = informed.estimate_count(&ca_ny).expect("query").expectation;

    // True count is 500/3 ≈ 167; the informed estimate must move strongly
    // toward it.
    assert!(
        (informed_est - 500.0 / 3.0).abs() < 25.0,
        "informed {informed_est}"
    );
    assert!(
        informed_est > 2.0 * uniform_est,
        "{uniform_est} -> {informed_est}"
    );
}
