//! Integration test of the CLI's internals: CSV ingestion → textual
//! predicates → summary → persistence, across crates.

use entropydb::core::selection::heuristics::select_pair_statistics;
use entropydb::prelude::*;
use entropydb::storage::csv::{load_str, CsvOptions};
use entropydb::storage::exec;
use entropydb::storage::parser::parse_predicate;

fn sample_csv() -> String {
    let mut text = String::from("origin,dest,distance\n");
    // Deterministic structured data: route distance depends on the pair.
    let states = ["CA", "NY", "FL", "WA", "TX"];
    for i in 0..2000u32 {
        let o = (i % 5) as usize;
        let d = ((i / 5) % 5) as usize;
        if o == d {
            continue;
        }
        let miles = 300 + 450 * ((o as i32 - d as i32).unsigned_abs()) + (i % 7) * 10;
        text.push_str(&format!("{},{},{}\n", states[o], states[d], miles));
    }
    text
}

#[test]
fn csv_to_summary_to_query_pipeline() {
    let dataset = load_str(&sample_csv(), &CsvOptions::default()).expect("csv loads");
    let table = &dataset.table;
    assert!(table.num_rows() > 1000);

    // Textual predicate answered exactly by the engine.
    let pred = parse_predicate("origin = CA AND dest IN (NY, FL)", &dataset).expect("parses");
    let truth = exec::count(table, &pred).expect("counts") as f64;
    assert!(truth > 0.0);

    // Summarize with statistics over (origin, distance) and (dest, distance).
    let o = dataset.table.schema().attr_by_name("origin").expect("attr");
    let d = dataset.table.schema().attr_by_name("dest").expect("attr");
    let dist = dataset
        .table
        .schema()
        .attr_by_name("distance")
        .expect("attr");
    let mut stats = Vec::new();
    for (x, y) in [(o, dist), (d, dist)] {
        stats.extend(
            select_pair_statistics(table, x, y, 60, Heuristic::Composite).expect("selection"),
        );
    }
    let summary = MaxEntSummary::build(table, stats, &SolverConfig::default()).expect("builds");

    // Textual BETWEEN query over the binned numeric column.
    let range = parse_predicate("distance BETWEEN 300 AND 800", &dataset).expect("parses");
    let est = summary
        .estimate_count(&range)
        .expect("estimates")
        .expectation;
    let exact = exec::count(table, &range).expect("counts") as f64;
    // The (·, distance) statistics plus complete 1D stats make pure
    // distance ranges essentially exact.
    assert!(
        (est - exact).abs() < 0.01 * exact.max(1.0),
        "est {est} vs exact {exact}"
    );

    // Persist, reload, and re-answer through the text format.
    let text = entropydb::core::serialize::to_string(&summary);
    let loaded = entropydb::core::serialize::from_str(&text).expect("round trips");
    let again = loaded
        .estimate_count(&range)
        .expect("estimates")
        .expectation;
    assert_eq!(est.to_bits(), again.to_bits());

    // Dictionary translation consistency: the label of a code parses back.
    let ca = dataset.code_of(o, "CA").expect("code");
    assert_eq!(dataset.label_of(o, ca).expect("label"), "CA");
}

#[test]
fn parser_against_synthetic_flights() {
    // The parser also works with a plain resolver over generated data by
    // querying through the CSV layer: write a few rows out and back.
    let dataset = load_str(
        "a,b\nx,1\ny,2\nx,3\nz,4\n",
        &CsvOptions {
            default_bins: 4,
            ..CsvOptions::default()
        },
    )
    .expect("loads");
    let pred = parse_predicate("a IN (x, z) AND b BETWEEN 1 AND 4", &dataset).expect("parses");
    let c = exec::count(&dataset.table, &pred).expect("counts");
    assert_eq!(c, 3);
}
